#include "dist/remote_endpoint.hpp"

#include <string>

#include "common/error.hpp"

namespace pac::dist {

RemoteEndpointBase::RemoteEndpointBase(int world_size, int rank,
                                       LinkModel link, FaultPlan faults)
    : Transport(world_size, link, std::move(faults)), rank_(rank) {
  check_rank(rank, "endpoint");
  for (int i = 0; i < world_size; ++i) {
    dead_.push_back(std::make_unique<std::atomic<bool>>(false));
    drained_.push_back(std::make_unique<std::atomic<bool>>(false));
    send_mutex_.push_back(std::make_unique<std::mutex>());
  }
}

void RemoteEndpointBase::flush_deferred(Mailbox& box,
                                        const std::pair<int, int>* key) {
  if (box.deferred.empty()) return;
  if (key != nullptr) {
    auto it = box.deferred.find(*key);
    if (it == box.deferred.end()) return;
    auto& queue = box.queues[*key];
    for (auto& msg : it->second) queue.push_back(std::move(msg));
    box.deferred.erase(it);
    return;
  }
  for (auto& [k, parked] : box.deferred) {
    auto& queue = box.queues[k];
    for (auto& msg : parked) queue.push_back(std::move(msg));
  }
  box.deferred.clear();
}

void RemoteEndpointBase::deposit(Message msg) {
  const int from = msg.source;
  const int tag = msg.tag;
  const bool park = faults_.active() && faults_.defer(from, rank_, tag);
  const auto key = std::make_pair(from, tag);
  {
    std::lock_guard<std::mutex> guard(box_.mutex);
    if (park) {
      box_.deferred[key].push_back(std::move(msg));
    } else {
      flush_deferred(box_, &key);
      box_.queues[key].push_back(std::move(msg));
      flush_deferred(box_, nullptr);
    }
  }
  faults_.message_delivered(from, rank_, tag);
  box_.arrived.notify_all();
}

void RemoteEndpointBase::send_framed(
    int from, int to, int tag, Message msg, std::uint64_t bytes,
    std::vector<std::uint8_t> (*encode)(const Message&)) {
  check_rank(from, "send source");
  check_rank(to, "send destination");
  PAC_CHECK(from == rank_, "endpoint of rank " << rank_
                               << " cannot send as rank " << from);
  if (closed_.load()) {
    throw ChannelClosedError("send on closed transport");
  }
  maybe_inject_death(from);
  if (dead_[static_cast<std::size_t>(from)]->load()) {
    throw PeerDeadError(from, "send from dead rank " + std::to_string(from));
  }
  if (dead_[static_cast<std::size_t>(to)]->load()) {
    throw PeerDeadError(to, "send to dead rank " + std::to_string(to));
  }
  run_send_faults(from, to, tag, bytes);
  record_send(from, to, bytes);
  if (to == rank_) {
    // Self-send: deposit locally; the deposit advances the fault sequence.
    deposit(std::move(msg));
    return;
  }
  const auto frame = encode(msg);
  {
    std::lock_guard<std::mutex> guard(
        *send_mutex_[static_cast<std::size_t>(to)]);
    wire_send(to, frame);
  }
  faults_.message_delivered(from, to, tag);
}

void RemoteEndpointBase::send(int from, int to, int tag, Tensor payload) {
  Message msg;
  msg.source = from;
  msg.tag = tag;
  msg.payload = std::move(payload);
  const std::uint64_t bytes = msg.payload_bytes();
  send_framed(from, to, tag, std::move(msg), bytes, [](const Message& m) {
    return wire::encode_data(m.source, m.tag, m.payload);
  });
}

void RemoteEndpointBase::send_q(int from, int to, int tag,
                                quant::QTensor payload) {
  Message msg;
  msg.source = from;
  msg.tag = tag;
  msg.q = std::move(payload);
  const std::uint64_t bytes = msg.payload_bytes();
  send_framed(from, to, tag, std::move(msg), bytes, [](const Message& m) {
    return wire::encode_data_q(m.source, m.tag, *m.q);
  });
}

std::optional<Message> RemoteEndpointBase::recv_impl(
    int to, int from, int tag,
    const std::optional<std::chrono::milliseconds>& timeout) {
  check_rank(to, "recv destination");
  check_rank(from, "recv source");
  PAC_CHECK(to == rank_, "endpoint of rank " << rank_
                             << " cannot recv as rank " << to);
  maybe_inject_death(to);
  std::unique_lock<std::mutex> lock(box_.mutex);
  const auto key = std::make_pair(from, tag);
  const auto ready = [&] {
    if (closed_.load()) return true;
    flush_deferred(box_, &key);
    auto it = box_.queues.find(key);
    if (it != box_.queues.end() && !it->second.empty()) return true;
    // A dead peer unblocks the receiver only once the inbound wire has
    // quiesced, so messages already on the wire keep drain semantics.
    return dead_[static_cast<std::size_t>(from)]->load() &&
           drained_[static_cast<std::size_t>(from)]->load();
  };
  if (timeout.has_value()) {
    if (!box_.arrived.wait_for(lock, *timeout, ready)) {
      return std::nullopt;
    }
  } else {
    box_.arrived.wait(lock, ready);
  }
  if (closed_.load()) {
    throw ChannelClosedError("recv aborted: transport closed");
  }
  auto it = box_.queues.find(key);
  if (it != box_.queues.end() && !it->second.empty()) {
    Message msg = std::move(it->second.front());
    it->second.pop_front();
    record_recv(from, to, msg.payload_bytes());
    return msg;
  }
  throw PeerDeadError(from, "recv aborted: rank " + std::to_string(from) +
                                " is dead");
}

void RemoteEndpointBase::handle_frame(wire::Frame frame) {
  switch (frame.type) {
    case wire::FrameType::kData: {
      Message msg;
      msg.source = frame.src;
      msg.tag = frame.tag;
      if (frame.qpayload.has_value()) {
        msg.q = std::move(*frame.qpayload);
      } else if (frame.payload_defined) {
        msg.payload = std::move(frame.payload);
      }
      deposit(std::move(msg));
      break;
    }
    case wire::FrameType::kRankDead:
      mark_dead_local(frame.src);
      break;
    case wire::FrameType::kClose:
      mark_closed_local();
      break;
    case wire::FrameType::kRootDead:
      // Backends that gossip root-death in-band (TCP) intercept this before
      // handle_frame; any other route still lands on the shared recorder so
      // a valid frame is never silently dropped.
      report_root_death(frame.src);
      break;
    case wire::FrameType::kHello:
      throw TransportError("unexpected HELLO frame past the handshake");
    case wire::FrameType::kResync:
      // Resync/ack frames are connection-scoped (TCP intercepts them in its
      // rx loop); one reaching the shared dispatcher is a protocol bug.
      throw TransportError("unexpected RESYNC frame past the handshake");
    default:
      throw TransportError("unhandled frame type " +
                           std::to_string(static_cast<int>(frame.type)));
  }
}

void RemoteEndpointBase::mark_dead_local(int rank) {
  check_rank(rank, "mark_dead_local");
  if (dead_[static_cast<std::size_t>(rank)]->exchange(true)) return;
  wake_all();
}

void RemoteEndpointBase::set_drained(int rank) {
  check_rank(rank, "set_drained");
  if (drained_[static_cast<std::size_t>(rank)]->exchange(true)) return;
  wake_all();
}

bool RemoteEndpointBase::drained(int rank) const {
  return drained_[static_cast<std::size_t>(rank)]->load();
}

void RemoteEndpointBase::mark_closed_local() {
  if (closed_.exchange(true)) return;
  wake_all();
}

void RemoteEndpointBase::wake_all() {
  { std::lock_guard<std::mutex> guard(box_.mutex); }
  box_.arrived.notify_all();
}

void RemoteEndpointBase::close() {
  if (closed_.exchange(true)) {
    return;
  }
  on_close();
  wake_all();
}

void RemoteEndpointBase::close_rank(int rank) {
  check_rank(rank, "close_rank");
  if (dead_[static_cast<std::size_t>(rank)]->exchange(true)) {
    return;
  }
  on_close_rank(rank);
  wake_all();
}

bool RemoteEndpointBase::rank_dead(int rank) const {
  check_rank(rank, "rank_dead");
  return dead_[static_cast<std::size_t>(rank)]->load();
}

}  // namespace pac::dist
