// Ready-made TransportFactory builders for running every rank of a world
// inside ONE process but over a real IPC backend — the cross-backend
// conformance suite and the loopback benchmarks use these to swap the
// in-process mailbox for shm rings or TCP loopback without touching any
// call sites.
//
// Both factories detect run boundaries from the rank sequence (EdgeCluster
// calls the factory in ascending rank order once per run), so one factory
// instance serves any number of cluster.run() calls, giving each run a
// fresh arena generation / socket mesh.  They require all ranks local to
// the calling process; the multi-process driver wires its own factories.
#pragma once

#include <string>

#include "dist/cluster.hpp"
#include "dist/tcp_transport.hpp"

namespace pac::dist {

// Endpoints share a named POSIX shm arena ("<base>_g<generation>"); the
// arena of a finished run is unlinked when its last endpoint dies.
TransportFactory make_shm_loopback_factory(std::string base_name);

// Endpoints bind kernel-assigned loopback ports; the factory exchanges
// them in-memory as endpoints are created, so the mesh is fully wired
// before cluster.run spawns any rank thread.  `tuning` applies to every
// endpoint (reconnect budget, frame auth, ...).
TransportFactory make_tcp_loopback_factory(TcpTuning tuning = {});

// Cross-machine wiring through a rendezvous service (dist/rendezvous.hpp):
// each endpoint binds a kernel-assigned port, announces itself under
// "<run_id>_g<generation>", and resolves peers lazily through the service
// the first time it dials them — no shared filesystem or in-memory
// exchange needed, so the same factory works in every process of a
// multi-machine run.
struct TcpRendezvousOptions {
  std::string server_host = "127.0.0.1";
  std::uint16_t server_port = 0;
  // Address peers should dial to reach THIS process (the host carried in
  // the announcement).
  std::string advertise_host = "127.0.0.1";
  std::string run_id = "pac";
  // Fetch the run's shared frame-auth key from the service and enable MAC
  // verification on every endpoint.
  bool fetch_auth_key = false;
  TcpTuning tuning;
};
TransportFactory make_tcp_rendezvous_factory(TcpRendezvousOptions options);

}  // namespace pac::dist
