// Ready-made TransportFactory builders for running every rank of a world
// inside ONE process but over a real IPC backend — the cross-backend
// conformance suite and the loopback benchmarks use these to swap the
// in-process mailbox for shm rings or TCP loopback without touching any
// call sites.
//
// Both factories detect run boundaries from the rank sequence (EdgeCluster
// calls the factory in ascending rank order once per run), so one factory
// instance serves any number of cluster.run() calls, giving each run a
// fresh arena generation / socket mesh.  They require all ranks local to
// the calling process; the multi-process driver wires its own factories.
#pragma once

#include <string>

#include "dist/cluster.hpp"

namespace pac::dist {

// Endpoints share a named POSIX shm arena ("<base>_g<generation>"); the
// arena of a finished run is unlinked when its last endpoint dies.
TransportFactory make_shm_loopback_factory(std::string base_name);

// Endpoints bind kernel-assigned loopback ports; the factory exchanges
// them in-memory as endpoints are created, so the mesh is fully wired
// before cluster.run spawns any rank thread.
TransportFactory make_tcp_loopback_factory();

}  // namespace pac::dist
