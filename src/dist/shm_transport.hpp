// POSIX shared-memory transport backend: same-host ranks in separate
// processes exchange wire frames through fixed-size SPSC byte rings, one
// ring per directed link, with process-shared semaphore doorbells.
//
// Kill-safety: a writer copies frame bytes into the ring first and
// publishes them with a release-store of the tail afterwards, so a rank
// killed (SIGKILL) mid-write leaves at most an unpublished or partial
// frame; readers never observe torn tensors — the FrameDecoder simply holds
// the partial bytes forever and the drain logic discards them.
//
// The arena also carries the world-shared failure state (closed flag,
// per-rank dead flags, root-death record), so `close_rank` and `close`
// propagate between processes without any in-band traffic, and an external
// supervisor (the rank launcher) can mark a SIGKILLed child dead with
// `ShmArena::mark_rank_dead`.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/remote_endpoint.hpp"

namespace pac::dist {

// A named shared-memory segment holding the rings and shared failure
// state for one world.  Create-or-attach: the first process to open the
// name initialises it; later processes attach and wait for the init seal.
class ShmArena {
 public:
  static constexpr int kMaxRanks = 64;

  ShmArena(const std::string& name, int world_size,
           std::uint32_t ring_bytes = 1u << 20);
  ~ShmArena();

  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;

  const std::string& name() const { return name_; }
  int world_size() const { return world_size_; }

  // Streams `len` bytes into the from->to ring, sleeping while the ring is
  // full.  Returns false (possibly mid-frame) once the world closes or `to`
  // dies; the receiver discards any partial frame on drain.
  bool write_bytes(int from, int to, const std::uint8_t* data,
                   std::size_t len);
  // Drains up to `cap` bytes from the from->to ring; returns bytes read.
  std::size_t read_bytes(int from, int to, std::uint8_t* buf,
                         std::size_t cap);
  bool ring_empty(int from, int to) const;

  // Shared failure state.
  void set_closed();
  bool is_closed() const;
  void set_dead(int rank);
  bool is_dead(int rank) const;
  void set_root_dead(int rank);
  int root_dead() const;

  // Doorbells: senders (and failure-state writers) post the receiving
  // rank's semaphore; pumps wait with a bounded timeout so external state
  // changes are noticed even without a post.
  void post_doorbell(int rank);
  void post_all_doorbells();
  bool wait_doorbell(int rank, int timeout_ms);

  // Removes the name from the namespace (existing mappings survive).
  static void unlink(const std::string& name);
  // Supervisor-side death marking: attaches an existing arena, flags
  // `rank` dead (and as the root death), wakes every pump.  Returns false
  // if no arena by that name exists.
  static bool mark_rank_dead(const std::string& name, int rank);

 private:
  struct Header;
  struct Ring;

  Ring& ring(int from, int to) const;
  std::uint8_t* ring_data(int from, int to) const;

  std::string name_;
  int world_size_ = 0;
  std::uint32_t ring_bytes_ = 0;
  std::size_t map_len_ = 0;
  void* map_ = nullptr;
  Header* header_ = nullptr;
};

class ShmTransport final : public RemoteEndpointBase {
 public:
  ShmTransport(std::shared_ptr<ShmArena> arena, int rank, LinkModel link = {},
               FaultPlan faults = {});
  // Convenience: create-or-attach the named arena.
  ShmTransport(const std::string& arena_name, int world_size, int rank,
               LinkModel link = {}, FaultPlan faults = {});
  ~ShmTransport() override;

  void report_root_death(int rank) override;
  int first_dead_rank() const override;

 protected:
  void wire_send(int to, const std::vector<std::uint8_t>& frame) override;
  void on_close_rank(int rank) override;
  void on_close() override;

 private:
  void pump_main();
  void mirror_shared_state();

  std::shared_ptr<ShmArena> arena_;
  std::vector<wire::FrameDecoder> decoders_;  // one per source rank
  std::atomic<bool> stop_{false};
  std::thread pump_;
};

}  // namespace pac::dist
