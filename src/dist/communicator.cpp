#include "dist/communicator.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace pac::dist {

double backoff_jitter(std::uint64_t seed, int rank, int attempt) {
  if (seed == 0) return 1.0;
  // SplitMix64 over (seed, rank, attempt): matches the fault injector's
  // event hashing so jitter is stable across platforms and interleavings.
  std::uint64_t z = seed;
  z ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) << 32) ^
       static_cast<std::uint64_t>(static_cast<std::uint32_t>(attempt));
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return 0.5 + static_cast<double>(z >> 11) * 0x1.0p-53;
}

double Communicator::compute_throttle() const {
  FaultInjector& faults = transport_->fault_injector();
  return faults.active() ? faults.throttle_of(rank_) : 1.0;
}

Communicator::~Communicator() {
  std::unique_lock<std::mutex> lk(async_mutex_);
  if (!sender_running_) return;
  // Best-effort drain: deliver what we can, but never hang teardown — if
  // the sender already faulted the queue is cleared, and if the transport
  // is closed the next attempt fails fast.
  stop_ = true;
  async_cv_.notify_all();
  lk.unlock();
  sender_.join();
}

void Communicator::rethrow_deferred_error() const {
  // Caller holds async_mutex_.
  if (deferred_error_) std::rethrow_exception(deferred_error_);
}

bool Communicator::has_pending_locked(int to, int tag) const {
  if (inflight_key_ && *inflight_key_ == std::make_pair(to, tag)) return true;
  for (const QueuedSend& q : queue_) {
    if (q.to == to && q.tag == tag) return true;
  }
  return false;
}

void Communicator::send_with_retry(int to, int tag, Tensor payload) {
  for (int attempt = 0;; ++attempt) {
    try {
      // Tensor copies are shared-storage handle copies, so retrying with a
      // fresh handle after a transient failure costs nothing.
      Tensor handle = payload;
      transport_->send(rank_, to, tag, std::move(handle));
      return;
    } catch (const TransientSendError&) {
      if (attempt >= policy_.max_send_retries) throw;
      obs::CounterRegistry::instance().add("comm.transient_retries", 1);
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          policy_.send_backoff_ms * static_cast<double>(attempt + 1) *
          backoff_jitter(policy_.backoff_jitter_seed, rank_, attempt)));
    }
  }
}

void Communicator::send(int to, int tag, Tensor payload) {
  {
    std::unique_lock<std::mutex> lk(async_mutex_);
    rethrow_deferred_error();
    // Preserve per-(to, tag) FIFO: a blocking send must not overtake isends
    // already queued for the same key.
    drained_cv_.wait(lk, [&] {
      return deferred_error_ || !has_pending_locked(to, tag);
    });
    rethrow_deferred_error();
  }
  send_with_retry(to, tag, std::move(payload));
}

void Communicator::send_q(int to, int tag, quant::QTensor payload) {
  {
    std::unique_lock<std::mutex> lk(async_mutex_);
    rethrow_deferred_error();
    drained_cv_.wait(lk, [&] {
      return deferred_error_ || !has_pending_locked(to, tag);
    });
    rethrow_deferred_error();
  }
  for (int attempt = 0;; ++attempt) {
    try {
      // QTensor copies are deep, but retries only happen under injected
      // transient faults — never on the clean path.
      quant::QTensor copy = payload;
      transport_->send_q(rank_, to, tag, std::move(copy));
      return;
    } catch (const TransientSendError&) {
      if (attempt >= policy_.max_send_retries) throw;
      obs::CounterRegistry::instance().add("comm.transient_retries", 1);
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          policy_.send_backoff_ms * static_cast<double>(attempt + 1) *
          backoff_jitter(policy_.backoff_jitter_seed, rank_, attempt)));
    }
  }
}

quant::QTensor Communicator::recv_q(int from, int tag) {
  {
    std::lock_guard<std::mutex> lk(async_mutex_);
    rethrow_deferred_error();
  }
  if (policy_.recv_timeout_ms <= 0.0) {
    return transport_->recv_q(rank_, from, tag);
  }
  double wait_ms = policy_.recv_timeout_ms;
  int degraded_windows = 0;
  for (int attempt = 0; attempt <= policy_.max_recv_retries;) {
    const double jittered =
        wait_ms * backoff_jitter(policy_.backoff_jitter_seed, rank_,
                                 attempt + degraded_windows);
    auto result = transport_->recv_q_for(
        rank_, from, tag,
        std::chrono::milliseconds(
            std::max<std::int64_t>(1, static_cast<std::int64_t>(jittered))));
    if (result.has_value()) return std::move(*result);
    if (transport_->link_degraded(from) &&
        degraded_windows < policy_.max_degraded_windows) {
      ++degraded_windows;  // reconnect window: the presumption clock freezes
      continue;
    }
    ++attempt;
    wait_ms *= 2.0;
  }
  transport_->report_root_death(from);
  throw PeerDeadError(from, "rank " + std::to_string(from) +
                                " presumed dead: recv_q(tag " +
                                std::to_string(tag) + ") timed out after " +
                                std::to_string(policy_.max_recv_retries + 1) +
                                " attempts");
}

Tensor Communicator::recv(int from, int tag) {
  {
    std::lock_guard<std::mutex> lk(async_mutex_);
    rethrow_deferred_error();
  }
  if (policy_.recv_timeout_ms <= 0.0) {
    return transport_->recv(rank_, from, tag);
  }
  double wait_ms = policy_.recv_timeout_ms;
  int degraded_windows = 0;
  for (int attempt = 0; attempt <= policy_.max_recv_retries;) {
    // The doubling base stays deterministic; only the waited duration is
    // jittered, so the retry *budget* is unchanged while concurrent ranks
    // de-synchronize their probes.
    const double jittered =
        wait_ms * backoff_jitter(policy_.backoff_jitter_seed, rank_,
                                 attempt + degraded_windows);
    auto result = transport_->recv_for(
        rank_, from, tag,
        std::chrono::milliseconds(
            std::max<std::int64_t>(1, static_cast<std::int64_t>(jittered))));
    if (result.has_value()) return std::move(*result);
    if (transport_->link_degraded(from) &&
        degraded_windows < policy_.max_degraded_windows) {
      // A degraded link is mid-reconnect: this window proves nothing about
      // the peer being dead, so it does not consume a retry attempt.
      ++degraded_windows;
      continue;
    }
    ++attempt;
    wait_ms *= 2.0;  // backoff: give a slow or congested link more time
  }
  // Record the presumption as the root-cause death so cascading unwinds
  // on other ranks (and other processes) absorb the same dead rank.
  transport_->report_root_death(from);
  throw PeerDeadError(from, "rank " + std::to_string(from) +
                                " presumed dead: recv(tag " +
                                std::to_string(tag) + ") timed out after " +
                                std::to_string(policy_.max_recv_retries + 1) +
                                " attempts");
}

void Communicator::isend(int to, int tag, Tensor payload) {
  std::lock_guard<std::mutex> lk(async_mutex_);
  rethrow_deferred_error();
  queue_.push_back(QueuedSend{to, tag, std::move(payload)});
  if (obs::enabled()) {
    obs::CounterRegistry::instance().high_water(
        "comm.isend_queue_depth.rank" + std::to_string(rank_),
        static_cast<std::int64_t>(queue_.size() + (inflight_key_ ? 1 : 0)));
  }
  if (!sender_running_) {
    sender_running_ = true;
    sender_ = std::thread([this] { sender_main(); });
  }
  async_cv_.notify_one();
}

PendingRecv Communicator::irecv(int from, int tag) {
  {
    std::lock_guard<std::mutex> lk(async_mutex_);
    rethrow_deferred_error();
  }
  return PendingRecv(this, from, tag);
}

Tensor PendingRecv::wait() {
  PAC_CHECK(comm_ != nullptr, "wait() on an invalid PendingRecv");
  if (!done_) {
    value_ = comm_->recv(from_, tag_);
    done_ = true;
  }
  return value_;
}

void Communicator::flush_sends() {
  std::unique_lock<std::mutex> lk(async_mutex_);
  drained_cv_.wait(lk, [&] {
    return deferred_error_ || (queue_.empty() && !inflight_key_);
  });
  rethrow_deferred_error();
}

std::size_t Communicator::pending_sends() const {
  std::lock_guard<std::mutex> lk(async_mutex_);
  return queue_.size() + (inflight_key_ ? 1 : 0);
}

void Communicator::abandon_sends() {
  std::lock_guard<std::mutex> lk(async_mutex_);
  queue_.clear();
  drained_cv_.notify_all();
}

std::optional<int> Communicator::deferred_death_rank() const {
  std::lock_guard<std::mutex> lk(async_mutex_);
  if (death_rank_ < 0) return std::nullopt;
  return death_rank_;
}

void Communicator::shutdown_links() { transport_->close_rank(rank_); }

void Communicator::sender_main() {
  obs::set_thread_name("rank" + std::to_string(rank_) + "/sender", rank_);
  std::unique_lock<std::mutex> lk(async_mutex_);
  for (;;) {
    {
      PAC_TRACE_SCOPE("sender_wait", rank_);
      async_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    }
    if (queue_.empty()) break;  // stop requested and nothing left to send
    QueuedSend msg = std::move(queue_.front());
    queue_.pop_front();
    inflight_key_ = std::make_pair(msg.to, msg.tag);
    lk.unlock();

    std::exception_ptr error;
    int death = -1;
    try {
      PAC_TRACE_SCOPE("sender_send", msg.to, msg.tag);
      send_with_retry(msg.to, msg.tag, std::move(msg.payload));
    } catch (const RankDeathError& e) {
      error = std::current_exception();
      death = e.rank();
    } catch (...) {
      error = std::current_exception();
    }

    lk.lock();
    inflight_key_.reset();
    if (error) {
      // First failure wins; everything still queued is undeliverable state
      // the owner will abandon during recovery.
      if (!deferred_error_) {
        deferred_error_ = error;
        death_rank_ = death;
      }
      queue_.clear();
      break;
    }
    // Wake flushers and blocked same-key senders after every delivery —
    // a send waiting on its (to, tag) key must not wait for the whole
    // queue to drain.
    drained_cv_.notify_all();
  }
  drained_cv_.notify_all();
}

int Communicator::group_index(const std::vector<int>& group) const {
  PAC_CHECK(!group.empty(), "empty collective group");
  PAC_CHECK(std::is_sorted(group.begin(), group.end()),
            "collective group must be sorted");
  PAC_CHECK(std::adjacent_find(group.begin(), group.end()) == group.end(),
            "collective group has duplicates");
  auto it = std::find(group.begin(), group.end(), rank_);
  PAC_CHECK(it != group.end(), "rank " << rank_
                                       << " not a member of the group");
  return static_cast<int>(it - group.begin());
}

void Communicator::barrier(const std::vector<int>& group, int tag) {
  const int me = group_index(group);
  const int root = group[0];
  Tensor token({1});
  if (rank_ == root) {
    for (std::size_t i = 1; i < group.size(); ++i) {
      recv(group[i], tag);
    }
    for (std::size_t i = 1; i < group.size(); ++i) {
      send(group[i], tag, token.clone());
    }
  } else {
    (void)me;
    send(root, tag, token.clone());
    recv(root, tag);
  }
}

Tensor Communicator::broadcast(Tensor payload, int root,
                               const std::vector<int>& group, int tag) {
  group_index(group);
  PAC_CHECK(std::find(group.begin(), group.end(), root) != group.end(),
            "broadcast root " << root << " not in group");
  if (rank_ == root) {
    for (int peer : group) {
      if (peer == root) continue;
      send(peer, tag, payload.clone());
    }
    return payload;
  }
  return recv(root, tag);
}

void Communicator::allreduce_sum(Tensor& t, const std::vector<int>& group,
                                 int tag, AllReduceAlgo algo) {
  group_index(group);
  if (group.size() == 1) return;
  PAC_CHECK(t.defined(), "allreduce on undefined tensor");
  // Tiny tensors do not chunk well; the ring degenerates gracefully but the
  // naive path is simpler and equally cheap.
  if (algo == AllReduceAlgo::kRing &&
      t.numel() >= static_cast<std::int64_t>(group.size())) {
    allreduce_ring(t, group, tag);
  } else {
    allreduce_naive(t, group, tag);
  }
}

void Communicator::allreduce_naive(Tensor& t, const std::vector<int>& group,
                                   int tag) {
  const int root = group[0];
  if (rank_ == root) {
    for (std::size_t i = 1; i < group.size(); ++i) {
      Tensor part = recv(group[i], tag);
      t.add_(part);
    }
    for (std::size_t i = 1; i < group.size(); ++i) {
      send(group[i], tag, t.clone());
    }
  } else {
    send(root, tag, t.clone());
    Tensor summed = recv(root, tag);
    t.copy_from(summed);
  }
}

void Communicator::allreduce_ring(Tensor& t, const std::vector<int>& group,
                                  int tag) {
  const int g = static_cast<int>(group.size());
  const int me = group_index(group);
  const int next = group[static_cast<std::size_t>((me + 1) % g)];
  const int prev = group[static_cast<std::size_t>((me - 1 + g) % g)];
  const std::int64_t n = t.numel();
  const std::int64_t chunk = (n + g - 1) / g;
  Tensor flat = t.reshape({n});

  auto chunk_range = [&](int c) {
    const std::int64_t begin = std::min<std::int64_t>(n, c * chunk);
    const std::int64_t end = std::min<std::int64_t>(n, begin + chunk);
    return std::make_pair(begin, end);
  };

  // Reduce-scatter: after g-1 steps, chunk (me+1) mod g holds the full sum.
  for (int step = 0; step < g - 1; ++step) {
    const int send_chunk = ((me - step) % g + g) % g;
    const int recv_chunk = ((me - step - 1) % g + g) % g;
    auto [sb, se] = chunk_range(send_chunk);
    send(next, tag, flat.slice0(sb, se).clone());
    Tensor in = recv(prev, tag);
    auto [rb, re] = chunk_range(recv_chunk);
    Tensor dst = flat.slice0(rb, re);
    PAC_CHECK(in.numel() == dst.numel(), "ring allreduce chunk mismatch");
    if (in.numel() > 0) dst.add_(in);
  }
  // All-gather the reduced chunks.
  for (int step = 0; step < g - 1; ++step) {
    const int send_chunk = ((me + 1 - step) % g + g) % g;
    const int recv_chunk = ((me - step) % g + g) % g;
    auto [sb, se] = chunk_range(send_chunk);
    send(next, tag, flat.slice0(sb, se).clone());
    Tensor in = recv(prev, tag);
    auto [rb, re] = chunk_range(recv_chunk);
    Tensor dst = flat.slice0(rb, re);
    PAC_CHECK(in.numel() == dst.numel(), "ring allgather chunk mismatch");
    if (in.numel() > 0) dst.copy_from(in);
  }
}

std::vector<Tensor> Communicator::allgather(const Tensor& t,
                                            const std::vector<int>& group,
                                            int tag) {
  const int me = group_index(group);
  std::vector<Tensor> out(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (group[i] == rank_) continue;
    send(group[i], tag, t.clone());
  }
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (static_cast<int>(i) == me) {
      out[i] = t.clone();
    } else {
      out[i] = recv(group[i], tag);
    }
  }
  return out;
}

}  // namespace pac::dist
