#include "dist/transport.hpp"

#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace pac::dist {

namespace {

// Counter names are built per link ("comm.sent_bytes.0>2"); callers guard
// on obs::enabled() so the string assembly never runs when idle.
std::string link_counter(const char* what, int from, int to) {
  return std::string("comm.") + what + "." + std::to_string(from) + ">" +
         std::to_string(to);
}

}  // namespace

// ---------------------------------------------------------------------------
// Transport (shared machinery)

Transport::Transport(int world_size, LinkModel link, FaultPlan faults)
    : world_size_(world_size),
      link_(link),
      faults_(std::move(faults), world_size) {
  PAC_CHECK(world_size > 0, "transport needs at least one rank");
}

void Transport::check_rank(int rank, const char* what) const {
  PAC_CHECK(rank >= 0 && rank < world_size_,
            what << " rank " << rank << " out of range [0, " << world_size_
                 << ")");
}

void Transport::report_root_death(int rank) {
  check_rank(rank, "report_root_death");
  int expected = -1;
  root_dead_.compare_exchange_strong(expected, rank);
}

void Transport::maybe_inject_death(int rank) {
  if (!faults_.active()) return;
  if (faults_.op_kills_rank(rank)) {
    report_root_death(rank);
    close_rank(rank);
    throw RankDeathError(rank);
  }
}

void Transport::run_send_faults(int from, int to, int tag,
                                std::uint64_t bytes) {
  if (faults_.active() && faults_.send_fails(from, to, tag)) {
    throw TransientSendError("injected transient send failure on link " +
                             std::to_string(from) + " -> " +
                             std::to_string(to));
  }
  if (faults_.active() && from != to && faults_.in_loss_burst(from, to)) {
    throw TransientSendError("injected loss episode on link " +
                             std::to_string(from) + " -> " +
                             std::to_string(to));
  }
  if (faults_.active()) {
    const double ms = faults_.delay_ms(from, to, tag);
    if (ms > 0.0) {
      PAC_TRACE_SCOPE("fault_delay", from, to);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(ms));
    }
  }
  if (faults_.active() && from != to) {
    // Token-bucket WAN shaping: sleep off the bandwidth deficit.  Timing
    // only, so shaped trajectories stay bit-identical to unshaped ones.
    const double s = faults_.shape_delay_s(from, bytes);
    if (s > 0.0) {
      PAC_TRACE_SCOPE("wan_shape", from, to);
      obs::CounterRegistry::instance().add(
          "wire.shape_sleep_us", static_cast<std::int64_t>(s * 1e6));
      std::this_thread::sleep_for(std::chrono::duration<double>(s));
    }
  }
  if (link_.simulate_delay && from != to) {
    PAC_TRACE_SCOPE("link_sleep", from, to);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(link_.transfer_seconds(bytes)));
  }
}

void Transport::record_send(int from, int to, std::uint64_t bytes) {
  if (obs::enabled()) {
    auto& counters = obs::CounterRegistry::instance();
    counters.add(link_counter("sent_bytes", from, to),
                 static_cast<std::int64_t>(bytes));
    counters.add(link_counter("sent_msgs", from, to), 1);
    // Aggregate data bytes on the wire (payload bytes as charged to the
    // link — compressed sends count their compressed size), so one counter
    // shows the whole-run traffic and the quantization win.
    counters.add("wire.data_bytes_tx", static_cast<std::int64_t>(bytes));
  }
  std::lock_guard<std::mutex> stats_guard(stats_mutex_);
  LinkStats& s = stats_[{from, to}];
  ++s.messages;
  s.bytes += bytes;
}

void Transport::record_recv(int from, int to, std::uint64_t bytes) {
  if (obs::enabled()) {
    obs::CounterRegistry::instance().add(link_counter("recv_bytes", from, to),
                                         static_cast<std::int64_t>(bytes));
  }
}

namespace {

// A compressed message is decompressed only here, at the fp32 consumption
// point; recv_q callers get the stored bytes untouched.
Tensor message_to_tensor(Message&& msg) {
  if (msg.q.has_value()) return quant::dequantize(*msg.q);
  return std::move(msg.payload);
}

quant::QTensor message_to_q(Message&& msg) {
  if (msg.q.has_value()) return std::move(*msg.q);
  PAC_CHECK(msg.payload.defined(),
            "recv_q on a message with an undefined payload");
  return quant::quantize(msg.payload, quant::Dtype::kF32);
}

}  // namespace

Tensor Transport::recv(int to, int from, int tag) {
  auto result = recv_impl(to, from, tag, std::nullopt);
  PAC_CHECK(result.has_value(), "untimed recv returned without a message");
  return message_to_tensor(std::move(*result));
}

std::optional<Tensor> Transport::recv_for(int to, int from, int tag,
                                          std::chrono::milliseconds timeout) {
  auto result = recv_impl(to, from, tag, timeout);
  if (!result.has_value()) return std::nullopt;
  return message_to_tensor(std::move(*result));
}

quant::QTensor Transport::recv_q(int to, int from, int tag) {
  auto result = recv_impl(to, from, tag, std::nullopt);
  PAC_CHECK(result.has_value(), "untimed recv returned without a message");
  return message_to_q(std::move(*result));
}

std::optional<quant::QTensor> Transport::recv_q_for(
    int to, int from, int tag, std::chrono::milliseconds timeout) {
  auto result = recv_impl(to, from, tag, timeout);
  if (!result.has_value()) return std::nullopt;
  return message_to_q(std::move(*result));
}

LinkStats Transport::stats(int from, int to) const {
  std::lock_guard<std::mutex> stats_guard(stats_mutex_);
  auto it = stats_.find({from, to});
  return it == stats_.end() ? LinkStats{} : it->second;
}

std::uint64_t Transport::total_bytes() const {
  std::lock_guard<std::mutex> stats_guard(stats_mutex_);
  std::uint64_t total = 0;
  for (const auto& [edge, s] : stats_) {
    if (edge.first != edge.second) total += s.bytes;
  }
  return total;
}

// ---------------------------------------------------------------------------
// InProcTransport

InProcTransport::InProcTransport(int world_size, LinkModel link,
                                 FaultPlan faults)
    : Transport(world_size, link, std::move(faults)) {
  mailboxes_.reserve(static_cast<std::size_t>(world_size));
  dead_.reserve(static_cast<std::size_t>(world_size));
  for (int i = 0; i < world_size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    dead_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
}

void InProcTransport::flush_deferred(Mailbox& box,
                                     const std::pair<int, int>* key_or_null) {
  if (box.deferred.empty()) return;
  if (key_or_null != nullptr) {
    auto it = box.deferred.find(*key_or_null);
    if (it == box.deferred.end()) return;
    auto& queue = box.queues[*key_or_null];
    for (auto& msg : it->second) queue.push_back(std::move(msg));
    box.deferred.erase(it);
    return;
  }
  for (auto& [key, parked] : box.deferred) {
    auto& queue = box.queues[key];
    for (auto& msg : parked) queue.push_back(std::move(msg));
  }
  box.deferred.clear();
}

void InProcTransport::send(int from, int to, int tag, Tensor payload) {
  Message msg;
  msg.source = from;
  msg.tag = tag;
  msg.payload = std::move(payload);
  const std::uint64_t bytes = msg.payload_bytes();
  send_message(from, to, tag, std::move(msg), bytes);
}

void InProcTransport::send_q(int from, int to, int tag,
                             quant::QTensor payload) {
  Message msg;
  msg.source = from;
  msg.tag = tag;
  msg.q = std::move(payload);
  const std::uint64_t bytes = msg.payload_bytes();
  send_message(from, to, tag, std::move(msg), bytes);
}

void InProcTransport::send_message(int from, int to, int tag, Message msg,
                                   std::uint64_t bytes) {
  check_rank(from, "send source");
  check_rank(to, "send destination");
  if (closed_.load()) {
    throw ChannelClosedError("send on closed transport");
  }
  maybe_inject_death(from);
  if (dead_[static_cast<std::size_t>(from)]->load()) {
    throw PeerDeadError(from, "send from dead rank " + std::to_string(from));
  }
  if (dead_[static_cast<std::size_t>(to)]->load()) {
    throw PeerDeadError(to, "send to dead rank " + std::to_string(to));
  }
  run_send_faults(from, to, tag, bytes);
  record_send(from, to, bytes);
  const bool park = faults_.active() && faults_.defer(from, to, tag);
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(to)];
  const auto key = std::make_pair(from, tag);
  {
    std::lock_guard<std::mutex> box_guard(box.mutex);
    if (park) {
      // Parked until a later message (or a matching receiver) flushes it —
      // a legal reorder: only cross-key messages can overtake it.
      box.deferred[key].push_back(std::move(msg));
    } else {
      // Same-key parked messages must keep their FIFO position.
      flush_deferred(box, &key);
      box.queues[key].push_back(std::move(msg));
      // Everything parked on other keys has now been overtaken; deliver.
      flush_deferred(box, nullptr);
    }
  }
  faults_.message_delivered(from, to, tag);
  box.arrived.notify_all();
}

std::optional<Message> InProcTransport::recv_impl(
    int to, int from, int tag,
    const std::optional<std::chrono::milliseconds>& timeout) {
  check_rank(to, "recv destination");
  check_rank(from, "recv source");
  maybe_inject_death(to);
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(to)];
  std::unique_lock<std::mutex> box_lock(box.mutex);
  const auto key = std::make_pair(from, tag);
  const auto ready = [&] {
    if (closed_.load()) return true;
    flush_deferred(box, &key);
    auto it = box.queues.find(key);
    if (it != box.queues.end() && !it->second.empty()) return true;
    return dead_[static_cast<std::size_t>(from)]->load();
  };
  if (timeout.has_value()) {
    if (!box.arrived.wait_for(box_lock, *timeout, ready)) {
      return std::nullopt;
    }
  } else {
    box.arrived.wait(box_lock, ready);
  }
  if (closed_.load()) {
    throw ChannelClosedError("recv aborted: transport closed");
  }
  auto it = box.queues.find(key);
  if (it != box.queues.end() && !it->second.empty()) {
    // Drain semantics: messages a now-dead peer already delivered are
    // still handed out so receivers can finish in-flight work.
    Message msg = std::move(it->second.front());
    it->second.pop_front();
    record_recv(from, to, msg.payload_bytes());
    return msg;
  }
  throw PeerDeadError(from, "recv aborted: rank " + std::to_string(from) +
                                " is dead");
}

void InProcTransport::close() {
  closed_.store(true);
  for (auto& box : mailboxes_) {
    // Lock/unlock pairs with waiting receivers to avoid lost wakeups.
    std::lock_guard<std::mutex> box_guard(box->mutex);
  }
  for (auto& box : mailboxes_) box->arrived.notify_all();
}

bool InProcTransport::closed() const { return closed_.load(); }

void InProcTransport::close_rank(int rank) {
  check_rank(rank, "close_rank");
  if (dead_[static_cast<std::size_t>(rank)]->exchange(true)) return;
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> box_guard(box->mutex);
  }
  for (auto& box : mailboxes_) box->arrived.notify_all();
}

bool InProcTransport::rank_dead(int rank) const {
  check_rank(rank, "rank_dead");
  return dead_[static_cast<std::size_t>(rank)]->load();
}

}  // namespace pac::dist
