#include "dist/transport.hpp"

#include <chrono>
#include <thread>

#include "common/error.hpp"

namespace pac::dist {

Transport::Transport(int world_size, LinkModel link)
    : world_size_(world_size), link_(link) {
  PAC_CHECK(world_size > 0, "transport needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(world_size));
  for (int i = 0; i < world_size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void Transport::check_rank(int rank, const char* what) const {
  PAC_CHECK(rank >= 0 && rank < world_size_,
            what << " rank " << rank << " out of range [0, " << world_size_
                 << ")");
}

void Transport::send(int from, int to, int tag, Tensor payload) {
  check_rank(from, "send source");
  check_rank(to, "send destination");
  if (closed_.load()) {
    throw ChannelClosedError("send on closed transport");
  }
  const std::uint64_t bytes =
      payload.defined() ? payload.byte_size() : 0;
  if (link_.simulate_delay && from != to) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(link_.transfer_seconds(bytes)));
  }
  {
    std::lock_guard<std::mutex> stats_guard(stats_mutex_);
    LinkStats& s = stats_[{from, to}];
    ++s.messages;
    s.bytes += bytes;
  }
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(to)];
  {
    std::lock_guard<std::mutex> box_guard(box.mutex);
    box.queues[{from, tag}].push_back(Message{from, tag, std::move(payload)});
  }
  box.arrived.notify_all();
}

Tensor Transport::recv(int to, int from, int tag) {
  check_rank(to, "recv destination");
  check_rank(from, "recv source");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(to)];
  std::unique_lock<std::mutex> box_lock(box.mutex);
  const auto key = std::make_pair(from, tag);
  box.arrived.wait(box_lock, [&] {
    if (closed_.load()) return true;
    auto it = box.queues.find(key);
    return it != box.queues.end() && !it->second.empty();
  });
  if (closed_.load()) {
    throw ChannelClosedError("recv aborted: transport closed");
  }
  auto& queue = box.queues[key];
  Message msg = std::move(queue.front());
  queue.pop_front();
  return std::move(msg.payload);
}

void Transport::close() {
  closed_.store(true);
  for (auto& box : mailboxes_) {
    // Lock/unlock pairs with waiting receivers to avoid lost wakeups.
    std::lock_guard<std::mutex> box_guard(box->mutex);
  }
  for (auto& box : mailboxes_) box->arrived.notify_all();
}

bool Transport::closed() const { return closed_.load(); }

LinkStats Transport::stats(int from, int to) const {
  std::lock_guard<std::mutex> stats_guard(stats_mutex_);
  auto it = stats_.find({from, to});
  return it == stats_.end() ? LinkStats{} : it->second;
}

std::uint64_t Transport::total_bytes() const {
  std::lock_guard<std::mutex> stats_guard(stats_mutex_);
  std::uint64_t total = 0;
  for (const auto& [edge, s] : stats_) {
    if (edge.first != edge.second) total += s.bytes;
  }
  return total;
}

}  // namespace pac::dist
