#include "dist/rendezvous.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <sstream>
#include <thread>

#include "common/error.hpp"

namespace pac::dist {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// A run id / host is one whitespace-free token on the wire.
bool valid_token(const std::string& s) {
  return !s.empty() &&
         s.find_first_of(" \t\r\n") == std::string::npos;
}

}  // namespace

// ---------------------------------------------------------------------------
// Server

RendezvousServer::RendezvousServer(std::uint16_t port, std::uint64_t key_seed)
    : key_seed_(key_seed) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw TransportError("rendezvous: socket: " +
                         std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    throw TransportError("rendezvous: bind port " + std::to_string(port) +
                         ": " + why);
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    throw TransportError("rendezvous: listen: " + why);
  }
  set_nonblocking(listen_fd_);
}

RendezvousServer::~RendezvousServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (auto& client : clients_) {
    if (client.fd >= 0) ::close(client.fd);
  }
}

std::string RendezvousServer::handle_request(const std::string& line) {
  std::istringstream in(line);
  std::string verb;
  in >> verb;
  if (verb == "PUT") {
    std::string run, host;
    int rank = -1;
    int peer_port = -1;
    in >> run >> rank >> host >> peer_port;
    if (!in || !valid_token(run) || !valid_token(host) || rank < 0 ||
        peer_port <= 0 || peer_port > 65535) {
      return "ERR\n";
    }
    runs_[run].peers[rank] =
        TcpPeer{host, static_cast<std::uint16_t>(peer_port)};
    return "OK\n";
  }
  if (verb == "GET") {
    std::string run;
    int rank = -1;
    in >> run >> rank;
    if (!in || !valid_token(run) || rank < 0) return "ERR\n";
    const auto run_it = runs_.find(run);
    if (run_it == runs_.end()) return "NONE\n";
    const auto peer_it = run_it->second.peers.find(rank);
    if (peer_it == run_it->second.peers.end()) return "NONE\n";
    return "PEER " + peer_it->second.host + " " +
           std::to_string(peer_it->second.port) + "\n";
  }
  if (verb == "KEY") {
    std::string run;
    in >> run;
    if (!in || !valid_token(run)) return "ERR\n";
    Run& r = runs_[run];
    if (r.key_hex.empty()) {
      // Mint once per run; every later KEY returns the same secret.
      std::uint64_t state = key_seed_;
      if (state == 0) {
        std::random_device rd;
        state = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
      }
      // Perturb by the run id so one seed still yields per-run keys.
      for (const char c : run) {
        state ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        state = splitmix64(state);
      }
      wire::AuthKey key{};
      const std::uint64_t lo = splitmix64(state);
      const std::uint64_t hi = splitmix64(state);
      std::memcpy(key.data(), &lo, 8);
      std::memcpy(key.data() + 8, &hi, 8);
      r.key_hex = wire::key_to_hex(key);
    }
    return "KEY " + r.key_hex + "\n";
  }
  return "ERR\n";
}

void RendezvousServer::pump_client(Client& client) {
  if (client.out.empty()) {
    char buf[512];
    const ssize_t n = ::recv(client.fd, buf, sizeof(buf), 0);
    if (n == 0 ||
        (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
         errno != EINTR)) {
      ::close(client.fd);
      client.fd = -1;
      return;
    }
    if (n > 0) {
      client.in.append(buf, static_cast<std::size_t>(n));
      if (client.in.size() > 4096) {  // garbage flood: drop it
        ::close(client.fd);
        client.fd = -1;
        return;
      }
      const auto eol = client.in.find('\n');
      if (eol != std::string::npos) {
        client.out = handle_request(client.in.substr(0, eol));
      }
    }
    return;
  }
  const ssize_t n = ::send(client.fd, client.out.data() + client.out_off,
                           client.out.size() - client.out_off, MSG_NOSIGNAL);
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
    return;
  }
  if (n <= 0) {
    ::close(client.fd);
    client.fd = -1;
    return;
  }
  client.out_off += static_cast<std::size_t>(n);
  if (client.out_off >= client.out.size()) {
    // One request per connection: reply sent, we are done.
    ::close(client.fd);
    client.fd = -1;
  }
}

void RendezvousServer::serve_forever() {
  while (!stop_.load()) {
    std::vector<pollfd> pfds;
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& client : clients_) {
      pfds.push_back(
          {client.fd, client.out.empty() ? POLLIN : POLLOUT, 0});
    }
    const int pr = ::poll(pfds.data(), pfds.size(), 50);
    if (stop_.load()) break;
    if (pr <= 0) continue;
    if (pfds[0].revents != 0) {
      while (true) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        set_nonblocking(fd);
        Client client;
        client.fd = fd;
        clients_.push_back(std::move(client));
      }
    }
    for (std::size_t i = 0; i + 1 < pfds.size() && i < clients_.size();
         ++i) {
      if (pfds[i + 1].revents != 0) pump_client(clients_[i]);
    }
    clients_.erase(std::remove_if(clients_.begin(), clients_.end(),
                                  [](const Client& c) { return c.fd < 0; }),
                   clients_.end());
  }
}

void RendezvousServer::start() {
  PAC_CHECK(!thread_.joinable(), "rendezvous server already started");
  stop_.store(false);
  thread_ = std::thread([this] { serve_forever(); });
}

void RendezvousServer::stop() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
}

// ---------------------------------------------------------------------------
// Client

std::optional<std::string> RendezvousClient::request(const std::string& line,
                                                     int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return std::nullopt;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::send(fd, line.data(), line.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(line.size())) {
    ::close(fd);
    return std::nullopt;
  }
  std::string reply;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 10) <= 0) continue;
    char buf[512];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
    const auto eol = reply.find('\n');
    if (eol != std::string::npos) {
      ::close(fd);
      return reply.substr(0, eol);
    }
  }
  ::close(fd);
  return std::nullopt;
}

void RendezvousClient::announce(const std::string& run_id, int rank,
                                const TcpPeer& self, int timeout_ms) {
  const std::string line = "PUT " + run_id + " " + std::to_string(rank) +
                           " " + self.host + " " +
                           std::to_string(self.port) + "\n";
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (true) {
    const auto reply = request(line, 500);
    if (reply.has_value() && *reply == "OK") return;
    if (reply.has_value() && *reply == "ERR") {
      // Definitive rejection (malformed run id / host / rank) — retrying
      // the same request can never succeed.
      throw TransportError("rendezvous: announce of rank " +
                           std::to_string(rank) + " for run '" + run_id +
                           "' rejected by the server");
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw TransportError("rendezvous: announce of rank " +
                           std::to_string(rank) + " for run '" + run_id +
                           "' failed (server unreachable?)");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

std::optional<TcpPeer> RendezvousClient::lookup(const std::string& run_id,
                                                int rank) {
  const auto reply =
      request("GET " + run_id + " " + std::to_string(rank) + "\n", 500);
  if (!reply.has_value()) return std::nullopt;
  std::istringstream in(*reply);
  std::string verb;
  in >> verb;
  if (verb != "PEER") return std::nullopt;
  std::string host;
  int port = 0;
  in >> host >> port;
  if (!in || host.empty() || port <= 0 || port > 65535) return std::nullopt;
  return TcpPeer{host, static_cast<std::uint16_t>(port)};
}

std::optional<TcpPeer> RendezvousClient::wait_peer(const std::string& run_id,
                                                   int rank, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (true) {
    if (auto peer = lookup(run_id, rank); peer.has_value()) return peer;
    if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

wire::AuthKey RendezvousClient::fetch_key(const std::string& run_id) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (true) {
    const auto reply = request("KEY " + run_id + "\n", 500);
    if (reply.has_value() && reply->rfind("KEY ", 0) == 0) {
      return wire::key_from_hex(reply->substr(4));
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw TransportError("rendezvous: key fetch for run '" + run_id +
                           "' failed (server unreachable?)");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace pac::dist
