#include "dist/wire.hpp"

#include <cstring>
#include <sstream>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace pac::dist::wire {

namespace {

struct Header {
  std::uint32_t magic = 0;
  std::uint8_t type = 0;
  std::uint8_t flags = 0;
  std::uint8_t dtype = 0;
  std::uint8_t reserved = 0;
  std::int32_t src = 0;
  std::int32_t tag = 0;
  std::uint32_t body_len = 0;
};

static_assert(kHeaderBytes == 20, "wire header is 20 bytes");

void pack_header(const Header& h, std::uint8_t* out) {
  std::memcpy(out + 0, &h.magic, 4);
  std::memcpy(out + 4, &h.type, 1);
  std::memcpy(out + 5, &h.flags, 1);
  std::memcpy(out + 6, &h.dtype, 1);
  std::memcpy(out + 7, &h.reserved, 1);
  std::memcpy(out + 8, &h.src, 4);
  std::memcpy(out + 12, &h.tag, 4);
  std::memcpy(out + 16, &h.body_len, 4);
}

Header unpack_header(const std::uint8_t* in) {
  Header h;
  std::memcpy(&h.magic, in + 0, 4);
  std::memcpy(&h.type, in + 4, 1);
  std::memcpy(&h.flags, in + 5, 1);
  std::memcpy(&h.dtype, in + 6, 1);
  std::memcpy(&h.reserved, in + 7, 1);
  std::memcpy(&h.src, in + 8, 4);
  std::memcpy(&h.tag, in + 12, 4);
  std::memcpy(&h.body_len, in + 16, 4);
  return h;
}

std::vector<std::uint8_t> finish_frame(Header h, const std::string& body) {
  PAC_CHECK(body.size() <= kMaxBodyBytes,
            "payload too large for wire frame: " << body.size() << " bytes");
  h.body_len = static_cast<std::uint32_t>(body.size());
  std::vector<std::uint8_t> out(kHeaderBytes + body.size());
  pack_header(h, out.data());
  std::memcpy(out.data() + kHeaderBytes, body.data(), body.size());
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode_data(int src, int tag,
                                      const Tensor& payload) {
  Header h;
  h.magic = kMagic;
  h.type = static_cast<std::uint8_t>(FrameType::kData);
  h.src = static_cast<std::int32_t>(src);
  h.tag = static_cast<std::int32_t>(tag);
  std::string body;
  if (payload.defined()) {
    h.flags = 1;
    std::ostringstream os(std::ios::binary);
    BinaryWriter w(os);
    const auto& shape = payload.shape();
    w.write_u32(static_cast<std::uint32_t>(shape.size()));
    w.write_i64s(shape.data(), shape.size());
    w.write_floats(payload.data(), static_cast<std::size_t>(payload.numel()));
    body = os.str();
  }
  return finish_frame(h, body);
}

std::vector<std::uint8_t> encode_data_q(int src, int tag,
                                        const quant::QTensor& payload) {
  Header h;
  h.magic = kMagic;
  h.type = static_cast<std::uint8_t>(FrameType::kData);
  h.flags = 1;
  h.dtype = static_cast<std::uint8_t>(payload.dtype);
  h.src = static_cast<std::int32_t>(src);
  h.tag = static_cast<std::int32_t>(tag);
  std::ostringstream os(std::ios::binary);
  BinaryWriter w(os);
  w.write_u32(static_cast<std::uint32_t>(payload.shape.size()));
  w.write_i64s(payload.shape.data(), payload.shape.size());
  if (payload.dtype == quant::Dtype::kI8) {
    w.write_floats(payload.scales.data(), payload.scales.size());
  }
  w.write_bytes(payload.data.data(), payload.data.size());
  return finish_frame(h, os.str());
}

std::vector<std::uint8_t> encode_control(FrameType type, int src) {
  Header h;
  h.magic = kMagic;
  h.type = static_cast<std::uint8_t>(type);
  h.src = static_cast<std::int32_t>(src);
  std::vector<std::uint8_t> out(kHeaderBytes);
  pack_header(h, out.data());
  return out;
}

void FrameDecoder::poison(const std::string& what) {
  poisoned_ = true;
  buffer_.clear();
  throw TransportError("wire: " + what);
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t len) {
  if (poisoned_) throw TransportError("wire: decoder poisoned by bad frame");
  buffer_.insert(buffer_.end(), data, data + len);
}

std::optional<Frame> FrameDecoder::next() {
  if (poisoned_) throw TransportError("wire: decoder poisoned by bad frame");
  if (buffer_.size() < kHeaderBytes) return std::nullopt;
  std::uint8_t raw[kHeaderBytes];
  std::copy(buffer_.begin(), buffer_.begin() + kHeaderBytes, raw);
  const Header h = unpack_header(raw);
  if (h.magic != kMagic) poison("bad magic");
  if (h.reserved != 0) poison("nonzero reserved field");
  if (h.dtype > static_cast<std::uint8_t>(quant::Dtype::kI8)) {
    poison("unknown payload dtype " + std::to_string(h.dtype));
  }
  const auto type = static_cast<FrameType>(h.type);
  if (type != FrameType::kData && type != FrameType::kHello &&
      type != FrameType::kRankDead && type != FrameType::kClose &&
      type != FrameType::kRootDead) {
    poison("unknown frame type " + std::to_string(h.type));
  }
  if (h.body_len > kMaxBodyBytes) {
    poison("oversized body: " + std::to_string(h.body_len) + " bytes");
  }
  const bool defined = (h.flags & 1u) != 0;
  if (type != FrameType::kData) {
    if (h.flags != 0) poison("flags on control frame");
    if (h.dtype != 0) poison("dtype on control frame");
    if (h.body_len != 0) poison("control frame with body");
  } else if (!defined) {
    if (h.dtype != 0) poison("dtype on undefined payload");
    if (h.body_len != 0) poison("undefined payload with non-empty body");
  }
  if (type != FrameType::kClose && world_size_ > 0 &&
      (h.src < 0 || h.src >= world_size_)) {
    poison("source rank " + std::to_string(h.src) + " out of range");
  }
  if (buffer_.size() < kHeaderBytes + h.body_len) return std::nullopt;

  Frame frame;
  frame.type = type;
  frame.src = static_cast<int>(h.src);
  frame.tag = static_cast<int>(h.tag);
  frame.payload_defined = defined;
  frame.dtype = static_cast<quant::Dtype>(h.dtype);
  if (type == FrameType::kData && defined) {
    // Validate the tensor body step by step so every read is bounds-checked
    // before it happens; lengths must tile the body exactly.
    std::string body(buffer_.begin() + kHeaderBytes,
                     buffer_.begin() + kHeaderBytes + h.body_len);
    std::istringstream is(body, std::ios::binary);
    BinaryReader r(is);
    if (h.body_len < 4) poison("tensor body shorter than its rank field");
    const std::uint32_t ndim = r.read_u32();
    // ndim == 0 is a rank-0 scalar (numel 1), legal on both ends.
    if (ndim > kMaxDims) {
      poison("tensor rank " + std::to_string(ndim) + " out of range");
    }
    if (h.body_len < 4 + 8ull * ndim) poison("tensor body truncates dims");
    Shape shape(ndim);
    r.read_i64s(shape.data(), ndim);
    const std::uint64_t elem_bytes = quant::element_bytes(frame.dtype);
    std::uint64_t numel = 1;
    for (std::int64_t d : shape) {
      if (d < 0) poison("negative tensor dimension");
      const auto ud = static_cast<std::uint64_t>(d);
      // Guard BEFORE multiplying: dims like [2^26, 2^38] would wrap numel
      // modulo 2^64 and sneak past an after-the-fact check.
      if (ud != 0 && numel > (kMaxBodyBytes / elem_bytes) / ud) {
        poison("tensor element count overflow");
      }
      numel *= ud;
    }
    // Per-row scale count for int8 (rows of the last dim; a rank-0 scalar
    // is one row).  Zero-numel tensors carry no rows and no scales.
    const std::uint64_t row_len =
        ndim == 0 ? 1 : static_cast<std::uint64_t>(shape.back());
    const std::uint64_t rows = row_len == 0 ? 0 : numel / row_len;
    const std::uint64_t scale_bytes =
        frame.dtype == quant::Dtype::kI8 ? 4ull * rows : 0;
    const std::uint64_t expected =
        4 + 8ull * ndim + scale_bytes + elem_bytes * numel;
    if (expected != h.body_len) {
      poison("tensor body length mismatch: header says " +
             std::to_string(h.body_len) + ", dims imply " +
             std::to_string(expected));
    }
    if (frame.dtype == quant::Dtype::kF32) {
      Tensor payload = Tensor::zeros(shape);
      r.read_floats(payload.data(), static_cast<std::size_t>(numel));
      frame.payload = std::move(payload);
    } else {
      quant::QTensor q;
      q.dtype = frame.dtype;
      q.shape = std::move(shape);
      if (frame.dtype == quant::Dtype::kI8) {
        q.scales.resize(static_cast<std::size_t>(rows));
        r.read_floats(q.scales.data(), q.scales.size());
      }
      q.data.resize(static_cast<std::size_t>(elem_bytes * numel));
      r.read_bytes(q.data.data(), q.data.size());
      frame.qpayload = std::move(q);
    }
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + kHeaderBytes + h.body_len);
  return frame;
}

}  // namespace pac::dist::wire
