#include "dist/wire.hpp"

#include <cstring>
#include <sstream>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "obs/counters.hpp"

namespace pac::dist::wire {

namespace {

struct Header {
  std::uint32_t magic = 0;
  std::uint8_t type = 0;
  std::uint8_t flags = 0;
  std::uint8_t dtype = 0;
  std::uint8_t reserved = 0;
  std::int32_t src = 0;
  std::int32_t tag = 0;
  std::uint32_t body_len = 0;
};

static_assert(kHeaderBytes == 20, "wire header is 20 bytes");

void pack_header(const Header& h, std::uint8_t* out) {
  std::memcpy(out + 0, &h.magic, 4);
  std::memcpy(out + 4, &h.type, 1);
  std::memcpy(out + 5, &h.flags, 1);
  std::memcpy(out + 6, &h.dtype, 1);
  std::memcpy(out + 7, &h.reserved, 1);
  std::memcpy(out + 8, &h.src, 4);
  std::memcpy(out + 12, &h.tag, 4);
  std::memcpy(out + 16, &h.body_len, 4);
}

Header unpack_header(const std::uint8_t* in) {
  Header h;
  std::memcpy(&h.magic, in + 0, 4);
  std::memcpy(&h.type, in + 4, 1);
  std::memcpy(&h.flags, in + 5, 1);
  std::memcpy(&h.dtype, in + 6, 1);
  std::memcpy(&h.reserved, in + 7, 1);
  std::memcpy(&h.src, in + 8, 4);
  std::memcpy(&h.tag, in + 12, 4);
  std::memcpy(&h.body_len, in + 16, 4);
  return h;
}

std::vector<std::uint8_t> finish_frame(Header h, const std::string& body) {
  PAC_CHECK(body.size() <= kMaxBodyBytes,
            "payload too large for wire frame: " << body.size() << " bytes");
  h.body_len = static_cast<std::uint32_t>(body.size());
  std::vector<std::uint8_t> out(kHeaderBytes + body.size());
  pack_header(h, out.data());
  std::memcpy(out.data() + kHeaderBytes, body.data(), body.size());
  return out;
}

inline std::uint64_t rotl64(std::uint64_t x, int b) {
  return (x << b) | (x >> (64 - b));
}

}  // namespace

std::vector<std::uint8_t> encode_data(int src, int tag,
                                      const Tensor& payload) {
  Header h;
  h.magic = kMagic;
  h.type = static_cast<std::uint8_t>(FrameType::kData);
  h.src = static_cast<std::int32_t>(src);
  h.tag = static_cast<std::int32_t>(tag);
  std::string body;
  if (payload.defined()) {
    h.flags = kFlagDefinedPayload;
    std::ostringstream os(std::ios::binary);
    BinaryWriter w(os);
    const auto& shape = payload.shape();
    w.write_u32(static_cast<std::uint32_t>(shape.size()));
    w.write_i64s(shape.data(), shape.size());
    w.write_floats(payload.data(), static_cast<std::size_t>(payload.numel()));
    body = os.str();
  }
  return finish_frame(h, body);
}

std::vector<std::uint8_t> encode_data_q(int src, int tag,
                                        const quant::QTensor& payload) {
  Header h;
  h.magic = kMagic;
  h.type = static_cast<std::uint8_t>(FrameType::kData);
  h.flags = kFlagDefinedPayload;
  h.dtype = static_cast<std::uint8_t>(payload.dtype);
  h.src = static_cast<std::int32_t>(src);
  h.tag = static_cast<std::int32_t>(tag);
  std::ostringstream os(std::ios::binary);
  BinaryWriter w(os);
  w.write_u32(static_cast<std::uint32_t>(payload.shape.size()));
  w.write_i64s(payload.shape.data(), payload.shape.size());
  if (payload.dtype == quant::Dtype::kI8) {
    w.write_floats(payload.scales.data(), payload.scales.size());
  }
  w.write_bytes(payload.data.data(), payload.data.size());
  return finish_frame(h, os.str());
}

std::vector<std::uint8_t> encode_control(FrameType type, int src) {
  Header h;
  h.magic = kMagic;
  h.type = static_cast<std::uint8_t>(type);
  h.src = static_cast<std::int32_t>(src);
  std::vector<std::uint8_t> out(kHeaderBytes);
  pack_header(h, out.data());
  return out;
}

std::vector<std::uint8_t> encode_resync(int src, std::uint32_t epoch,
                                        std::uint64_t delivered) {
  Header h;
  h.magic = kMagic;
  h.type = static_cast<std::uint8_t>(FrameType::kResync);
  h.src = static_cast<std::int32_t>(src);
  h.body_len = kResyncBodyBytes;
  std::vector<std::uint8_t> out(kHeaderBytes + kResyncBodyBytes);
  pack_header(h, out.data());
  std::memcpy(out.data() + kHeaderBytes, &epoch, 4);
  std::memcpy(out.data() + kHeaderBytes + 4, &delivered, 8);
  return out;
}

std::uint64_t siphash24(const AuthKey& key, const std::uint8_t* data,
                        std::size_t len) {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;
  std::memcpy(&k0, key.data(), 8);
  std::memcpy(&k1, key.data() + 8, 8);
  std::uint64_t v0 = k0 ^ 0x736f6d6570736575ULL;
  std::uint64_t v1 = k1 ^ 0x646f72616e646f6dULL;
  std::uint64_t v2 = k0 ^ 0x6c7967656e657261ULL;
  std::uint64_t v3 = k1 ^ 0x7465646279746573ULL;
  const auto sipround = [&] {
    v0 += v1;
    v1 = rotl64(v1, 13);
    v1 ^= v0;
    v0 = rotl64(v0, 32);
    v2 += v3;
    v3 = rotl64(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl64(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl64(v1, 17);
    v1 ^= v2;
    v2 = rotl64(v2, 32);
  };
  const std::size_t tail = len & 7;
  const std::uint8_t* end = data + (len - tail);
  for (const std::uint8_t* p = data; p != end; p += 8) {
    std::uint64_t m = 0;
    std::memcpy(&m, p, 8);
    v3 ^= m;
    sipround();
    sipround();
    v0 ^= m;
  }
  std::uint64_t b = static_cast<std::uint64_t>(len) << 56;
  for (std::size_t i = 0; i < tail; ++i) {
    b |= static_cast<std::uint64_t>(end[i]) << (8 * i);
  }
  v3 ^= b;
  sipround();
  sipround();
  v0 ^= b;
  v2 ^= 0xff;
  sipround();
  sipround();
  sipround();
  sipround();
  return v0 ^ v1 ^ v2 ^ v3;
}

void authenticate(std::vector<std::uint8_t>& frame, const AuthKey& key) {
  PAC_CHECK(frame.size() >= kHeaderBytes, "authenticate on a short frame");
  // The tag covers the header with the auth bit already set, so the flag
  // itself is tamper-evident.
  frame[5] |= kFlagAuthenticated;
  const std::uint64_t tag = siphash24(key, frame.data(), frame.size());
  const std::size_t off = frame.size();
  frame.resize(off + kAuthTagBytes);
  std::memcpy(frame.data() + off, &tag, kAuthTagBytes);
}

AuthKey key_from_hex(const std::string& hex) {
  if (hex.size() != 2 * kAuthKeyBytes) {
    throw TransportError("wire: auth key hex must be " +
                         std::to_string(2 * kAuthKeyBytes) + " chars, got " +
                         std::to_string(hex.size()));
  }
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  AuthKey key{};
  for (std::size_t i = 0; i < kAuthKeyBytes; ++i) {
    const int hi = nibble(hex[2 * i]);
    const int lo = nibble(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) throw TransportError("wire: bad hex in auth key");
    key[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return key;
}

std::string key_to_hex(const AuthKey& key) {
  static const char* digits = "0123456789abcdef";
  std::string hex;
  hex.reserve(2 * kAuthKeyBytes);
  for (const std::uint8_t b : key) {
    hex.push_back(digits[b >> 4]);
    hex.push_back(digits[b & 0xF]);
  }
  return hex;
}

void FrameDecoder::poison(const std::string& what) {
  poisoned_ = true;
  buffer_.clear();
  throw TransportError("wire: " + what);
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t len) {
  if (poisoned_) throw TransportError("wire: decoder poisoned by bad frame");
  buffer_.insert(buffer_.end(), data, data + len);
}

std::optional<Frame> FrameDecoder::next() {
  if (poisoned_) throw TransportError("wire: decoder poisoned by bad frame");
  if (buffer_.size() < kHeaderBytes) return std::nullopt;
  std::uint8_t raw[kHeaderBytes];
  std::copy(buffer_.begin(), buffer_.begin() + kHeaderBytes, raw);
  const Header h = unpack_header(raw);
  if (h.magic != kMagic) poison("bad magic");
  if (h.reserved != 0) poison("nonzero reserved field");
  if (h.dtype > static_cast<std::uint8_t>(quant::Dtype::kI8)) {
    poison("unknown payload dtype " + std::to_string(h.dtype));
  }
  const auto type = static_cast<FrameType>(h.type);
  if (type != FrameType::kData && type != FrameType::kHello &&
      type != FrameType::kRankDead && type != FrameType::kClose &&
      type != FrameType::kRootDead && type != FrameType::kResync) {
    poison("unknown frame type " + std::to_string(h.type));
  }
  if (h.body_len > kMaxBodyBytes) {
    poison("oversized body: " + std::to_string(h.body_len) + " bytes");
  }
  if ((h.flags & ~(kFlagDefinedPayload | kFlagAuthenticated)) != 0) {
    poison("unknown flag bits " + std::to_string(h.flags));
  }
  const bool defined = (h.flags & kFlagDefinedPayload) != 0;
  const bool authed = (h.flags & kFlagAuthenticated) != 0;
  // An authenticated link rejects bare frames (tag stripping) and a bare
  // link rejects authenticated frames (no key to verify them with) — both
  // BEFORE waiting for the body, so a forged length can't stall the check.
  if (authed && !key_.has_value()) {
    poison("authenticated frame without a configured key");
  }
  if (!authed && key_.has_value()) {
    ++auth_failures_;
    obs::CounterRegistry::instance().add("wire.auth_fail", 1);
    poison("unauthenticated frame on an authenticated link");
  }
  if (type == FrameType::kResync) {
    if (defined) poison("flags on control frame");
    if (h.dtype != 0) poison("dtype on control frame");
    if (h.body_len != kResyncBodyBytes) {
      poison("resync body must be " + std::to_string(kResyncBodyBytes) +
             " bytes, got " + std::to_string(h.body_len));
    }
  } else if (type != FrameType::kData) {
    if (defined) poison("flags on control frame");
    if (h.dtype != 0) poison("dtype on control frame");
    if (h.body_len != 0) poison("control frame with body");
  } else if (!defined) {
    if (h.dtype != 0) poison("dtype on undefined payload");
    if (h.body_len != 0) poison("undefined payload with non-empty body");
  }
  if (type != FrameType::kClose && world_size_ > 0 &&
      (h.src < 0 || h.src >= world_size_)) {
    poison("source rank " + std::to_string(h.src) + " out of range");
  }
  const std::size_t total =
      kHeaderBytes + h.body_len + (authed ? kAuthTagBytes : 0);
  if (buffer_.size() < total) return std::nullopt;
  if (authed) {
    // Verify the MAC over header+body BEFORE any body parsing: a tampered
    // frame must never reach a mailbox (or even the tensor validator).
    std::vector<std::uint8_t> signed_bytes(
        buffer_.begin(), buffer_.begin() + kHeaderBytes + h.body_len);
    const std::uint64_t want =
        siphash24(*key_, signed_bytes.data(), signed_bytes.size());
    std::uint8_t tag_raw[kAuthTagBytes];
    std::copy(buffer_.begin() + kHeaderBytes + h.body_len,
              buffer_.begin() + static_cast<std::ptrdiff_t>(total), tag_raw);
    std::uint64_t got = 0;
    std::memcpy(&got, tag_raw, kAuthTagBytes);
    if (got != want) {
      ++auth_failures_;
      obs::CounterRegistry::instance().add("wire.auth_fail", 1);
      poison("frame authentication failed");
    }
  }

  Frame frame;
  frame.type = type;
  frame.src = static_cast<int>(h.src);
  frame.tag = static_cast<int>(h.tag);
  frame.payload_defined = defined;
  frame.dtype = static_cast<quant::Dtype>(h.dtype);
  if (type == FrameType::kResync) {
    std::uint8_t body[kResyncBodyBytes];
    std::copy(buffer_.begin() + kHeaderBytes,
              buffer_.begin() + kHeaderBytes + kResyncBodyBytes, body);
    std::memcpy(&frame.resync_epoch, body, 4);
    std::memcpy(&frame.resync_delivered, body + 4, 8);
  } else if (type == FrameType::kData && defined) {
    // Validate the tensor body step by step so every read is bounds-checked
    // before it happens; lengths must tile the body exactly.
    std::string body(buffer_.begin() + kHeaderBytes,
                     buffer_.begin() + kHeaderBytes + h.body_len);
    std::istringstream is(body, std::ios::binary);
    BinaryReader r(is);
    if (h.body_len < 4) poison("tensor body shorter than its rank field");
    const std::uint32_t ndim = r.read_u32();
    // ndim == 0 is a rank-0 scalar (numel 1), legal on both ends.
    if (ndim > kMaxDims) {
      poison("tensor rank " + std::to_string(ndim) + " out of range");
    }
    if (h.body_len < 4 + 8ull * ndim) poison("tensor body truncates dims");
    Shape shape(ndim);
    r.read_i64s(shape.data(), ndim);
    const std::uint64_t elem_bytes = quant::element_bytes(frame.dtype);
    std::uint64_t numel = 1;
    for (std::int64_t d : shape) {
      if (d < 0) poison("negative tensor dimension");
      const auto ud = static_cast<std::uint64_t>(d);
      // Guard BEFORE multiplying: dims like [2^26, 2^38] would wrap numel
      // modulo 2^64 and sneak past an after-the-fact check.
      if (ud != 0 && numel > (kMaxBodyBytes / elem_bytes) / ud) {
        poison("tensor element count overflow");
      }
      numel *= ud;
    }
    // Per-row scale count for int8 (rows of the last dim; a rank-0 scalar
    // is one row).  Zero-numel tensors carry no rows and no scales.
    const std::uint64_t row_len =
        ndim == 0 ? 1 : static_cast<std::uint64_t>(shape.back());
    const std::uint64_t rows = row_len == 0 ? 0 : numel / row_len;
    const std::uint64_t scale_bytes =
        frame.dtype == quant::Dtype::kI8 ? 4ull * rows : 0;
    const std::uint64_t expected =
        4 + 8ull * ndim + scale_bytes + elem_bytes * numel;
    if (expected != h.body_len) {
      poison("tensor body length mismatch: header says " +
             std::to_string(h.body_len) + ", dims imply " +
             std::to_string(expected));
    }
    if (frame.dtype == quant::Dtype::kF32) {
      Tensor payload = Tensor::zeros(shape);
      r.read_floats(payload.data(), static_cast<std::size_t>(numel));
      frame.payload = std::move(payload);
    } else {
      quant::QTensor q;
      q.dtype = frame.dtype;
      q.shape = std::move(shape);
      if (frame.dtype == quant::Dtype::kI8) {
        q.scales.resize(static_cast<std::size_t>(rows));
        r.read_floats(q.scales.data(), q.scales.size());
      }
      q.data.resize(static_cast<std::size_t>(elem_bytes * numel));
      r.read_bytes(q.data.data(), q.data.size());
      frame.qpayload = std::move(q);
    }
  }
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(total));
  return frame;
}

}  // namespace pac::dist::wire
