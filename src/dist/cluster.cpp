#include "dist/cluster.hpp"

#include <exception>
#include <mutex>
#include <thread>

#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace pac::dist {

EdgeCluster::EdgeCluster(std::vector<DeviceSpec> devices, LinkModel link)
    : devices_(std::move(devices)), link_(link) {
  PAC_CHECK(!devices_.empty(), "cluster needs at least one device");
  for (int i = 0; i < size(); ++i) {
    ledgers_.push_back(
        std::make_unique<MemoryLedger>(i, devices_[static_cast<std::size_t>(i)]
                                              .memory_budget));
  }
  dead_.assign(devices_.size(), false);
}

EdgeCluster::EdgeCluster(int n, std::uint64_t memory_budget_bytes,
                         LinkModel link)
    : EdgeCluster(std::vector<DeviceSpec>(
                      static_cast<std::size_t>(n),
                      DeviceSpec{1.0, memory_budget_bytes}),
                  link) {}

MemoryLedger& EdgeCluster::ledger(int rank) {
  PAC_CHECK(rank >= 0 && rank < size(), "ledger rank out of range");
  return *ledgers_[static_cast<std::size_t>(rank)];
}

const DeviceSpec& EdgeCluster::spec(int rank) const {
  PAC_CHECK(rank >= 0 && rank < size(), "spec rank out of range");
  return devices_[static_cast<std::size_t>(rank)];
}

void EdgeCluster::mark_dead(int rank) {
  PAC_CHECK(rank >= 0 && rank < size(), "mark_dead rank out of range");
  dead_[static_cast<std::size_t>(rank)] = true;
  PAC_CHECK(num_alive() > 0, "marking rank " << rank
                                             << " dead leaves no devices");
}

bool EdgeCluster::is_dead(int rank) const {
  PAC_CHECK(rank >= 0 && rank < size(), "is_dead rank out of range");
  return dead_[static_cast<std::size_t>(rank)];
}

int EdgeCluster::num_alive() const {
  int alive = 0;
  for (bool d : dead_) alive += d ? 0 : 1;
  return alive;
}

std::vector<int> EdgeCluster::alive_ranks() const {
  std::vector<int> out;
  for (int r = 0; r < size(); ++r) {
    if (!dead_[static_cast<std::size_t>(r)]) out.push_back(r);
  }
  return out;
}

void EdgeCluster::set_local_ranks(std::vector<int> ranks) {
  for (int r : ranks) {
    PAC_CHECK(r >= 0 && r < size(), "local rank " << r << " out of range");
  }
  local_ranks_ = std::move(ranks);
}

bool EdgeCluster::rank_is_local(int rank) const {
  if (local_ranks_.empty()) return true;
  for (int r : local_ranks_) {
    if (r == rank) return true;
  }
  return false;
}

Transport* EdgeCluster::transport_for(int rank) {
  for (std::size_t i = 0; i < transports_.size(); ++i) {
    if (transport_rank_[i] == rank || transport_rank_[i] == -1) {
      return transports_[i].get();
    }
  }
  PAC_CHECK(false, "no transport endpoint for rank " << rank);
  return nullptr;
}

std::uint64_t EdgeCluster::last_run_total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& t : transports_) total += t->total_bytes();
  return total;
}

void EdgeCluster::run(const std::function<void(DeviceContext&)>& fn) {
  transports_.clear();
  transport_rank_.clear();
  if (factory_) {
    for (int r = 0; r < size(); ++r) {
      if (!rank_is_local(r) || dead_[static_cast<std::size_t>(r)]) continue;
      transports_.push_back(factory_(size(), r, link_, fault_plan_));
      transport_rank_.push_back(r);
    }
    PAC_CHECK(!transports_.empty(), "no live local ranks to run");
  } else {
    PAC_CHECK(local_ranks_.empty(),
              "local-rank restriction requires a transport factory");
    transports_.push_back(
        std::make_unique<InProcTransport>(size(), link_, fault_plan_));
    transport_rank_.push_back(-1);
  }
  for (auto& transport : transports_) {
    for (int r = 0; r < size(); ++r) {
      if (dead_[static_cast<std::size_t>(r)]) transport->close_rank(r);
    }
  }

  std::mutex failure_mutex;
  std::exception_ptr first_death;
  std::exception_ptr first_failure;
  std::exception_ptr first_peer_dead;

  auto rank_main = [&](int rank) {
    obs::set_thread_name("rank" + std::to_string(rank), rank);
    Transport& transport = *transport_for(rank);
    Communicator comm(transport, rank);
    comm.set_policy(comm_policy_);
    DeviceContext ctx{rank, size(), comm,
                      *ledgers_[static_cast<std::size_t>(rank)],
                      devices_[static_cast<std::size_t>(rank)]};
    try {
      fn(ctx);
    } catch (const RankDeathError& e) {
      // This rank's own (injected) death.  Close only its links so the
      // rest of the world unwinds with PeerDeadError, not ChannelClosed.
      {
        std::lock_guard<std::mutex> failure_guard(failure_mutex);
        if (!first_death) first_death = std::current_exception();
      }
      PAC_LOG_WARN << "device " << e.rank()
                   << " died; closing its links only";
      transport.close_rank(e.rank());
    } catch (const PeerDeadError& e) {
      // A peer died under this rank.  Leave the step, closing our own
      // links so ranks blocked on us cascade out the same way.
      {
        std::lock_guard<std::mutex> failure_guard(failure_mutex);
        if (!first_peer_dead) first_peer_dead = std::current_exception();
      }
      PAC_LOG_INFO << "device " << rank << " unwinding: peer " << e.rank()
                   << " is dead";
      transport.close_rank(rank);
    } catch (const ChannelClosedError&) {
      // Secondary failure caused by another rank's close(); swallow.
    } catch (...) {
      {
        std::lock_guard<std::mutex> failure_guard(failure_mutex);
        if (!first_failure) first_failure = std::current_exception();
      }
      PAC_LOG_WARN << "device " << rank
                   << " failed; closing transport to unwind peers";
      for (auto& t : transports_) t->close();
    }
    // An injected death can fire on the communicator's async sender thread
    // instead of here; in that case the main thread unwound with some
    // secondary error (or none).  Surface it so the death is recorded as
    // the root cause and the rank stays dead for subsequent runs.
    if (auto death = comm.deferred_death_rank()) {
      {
        std::lock_guard<std::mutex> failure_guard(failure_mutex);
        if (!first_death) {
          first_death = std::make_exception_ptr(RankDeathError(*death));
        }
      }
      PAC_LOG_WARN << "device " << *death
                   << " died (async sender); closing its links only";
      transport.close_rank(*death);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    if (dead_[static_cast<std::size_t>(r)] || !rank_is_local(r)) continue;
    threads.emplace_back(rank_main, r);
  }
  for (auto& t : threads) t.join();

  // Priority: the root-cause death first, then real failures, then a
  // PeerDeadError nobody explained (e.g. a recv-timeout presumption).
  if (first_death) {
    try {
      std::rethrow_exception(first_death);
    } catch (const RankDeathError& e) {
      // The dead rank stays dead for subsequent runs even if the caller
      // forgets to mark_dead() it.
      dead_[static_cast<std::size_t>(e.rank())] = true;
      throw;
    }
  }
  if (first_failure) std::rethrow_exception(first_failure);
  if (first_peer_dead) {
    // Cascading unwinds can record a survivor's own close before the real
    // death; prefer the transport's root-cause record (in multi-process
    // mode this is the world-shared view, so every process absorbs the
    // same dead rank).
    int root = -1;
    for (const auto& t : transports_) {
      root = t->first_dead_rank();
      if (root >= 0) break;
    }
    if (root >= 0 && !dead_[static_cast<std::size_t>(root)]) {
      try {
        std::rethrow_exception(first_peer_dead);
      } catch (const PeerDeadError& e) {
        if (e.rank() != root) {
          throw PeerDeadError(root, "rank " + std::to_string(root) +
                                        " is dead (root cause)");
        }
        throw;
      }
    }
    std::rethrow_exception(first_peer_dead);
  }
}

}  // namespace pac::dist
