#include "dist/cluster.hpp"

#include <exception>
#include <mutex>
#include <thread>

#include "common/logging.hpp"

namespace pac::dist {

EdgeCluster::EdgeCluster(std::vector<DeviceSpec> devices, LinkModel link)
    : devices_(std::move(devices)), link_(link) {
  PAC_CHECK(!devices_.empty(), "cluster needs at least one device");
  for (int i = 0; i < size(); ++i) {
    ledgers_.push_back(
        std::make_unique<MemoryLedger>(i, devices_[static_cast<std::size_t>(i)]
                                              .memory_budget));
  }
}

EdgeCluster::EdgeCluster(int n, std::uint64_t memory_budget_bytes,
                         LinkModel link)
    : EdgeCluster(std::vector<DeviceSpec>(
                      static_cast<std::size_t>(n),
                      DeviceSpec{1.0, memory_budget_bytes}),
                  link) {}

MemoryLedger& EdgeCluster::ledger(int rank) {
  PAC_CHECK(rank >= 0 && rank < size(), "ledger rank out of range");
  return *ledgers_[static_cast<std::size_t>(rank)];
}

const DeviceSpec& EdgeCluster::spec(int rank) const {
  PAC_CHECK(rank >= 0 && rank < size(), "spec rank out of range");
  return devices_[static_cast<std::size_t>(rank)];
}

void EdgeCluster::run(const std::function<void(DeviceContext&)>& fn) {
  transport_ = std::make_unique<Transport>(size(), link_);

  std::mutex failure_mutex;
  std::exception_ptr first_failure;

  auto rank_main = [&](int rank) {
    Communicator comm(*transport_, rank);
    DeviceContext ctx{rank, size(), comm,
                      *ledgers_[static_cast<std::size_t>(rank)],
                      devices_[static_cast<std::size_t>(rank)]};
    try {
      fn(ctx);
    } catch (const ChannelClosedError&) {
      // Secondary failure caused by another rank's close(); swallow.
    } catch (...) {
      {
        std::lock_guard<std::mutex> failure_guard(failure_mutex);
        if (!first_failure) first_failure = std::current_exception();
      }
      PAC_LOG_WARN << "device " << rank
                   << " failed; closing transport to unwind peers";
      transport_->close();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    threads.emplace_back(rank_main, r);
  }
  for (auto& t : threads) t.join();

  if (first_failure) std::rethrow_exception(first_failure);
}

}  // namespace pac::dist
