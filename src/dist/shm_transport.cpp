#include "dist/shm_transport.hpp"

#include <fcntl.h>
#include <semaphore.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <new>
#include <thread>

#include "common/error.hpp"

namespace pac::dist {

namespace {

constexpr std::uint64_t kSealMagic = 0x5041435348'4d454dULL;  // "PACSHMEM"

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError("shm: " + what + ": " + std::strerror(errno));
}

}  // namespace

// Cache-line padded SPSC ring positions.  `head` is the consumer cursor,
// `tail` the producer cursor; both grow without bound and are reduced
// modulo the ring size on access.  The release-store of `tail` after the
// memcpy is what makes partially written frames invisible to the reader.
struct ShmArena::Ring {
  std::atomic<std::uint64_t> head;
  char pad0[56];
  std::atomic<std::uint64_t> tail;
  char pad1[56];
};

struct ShmArena::Header {
  std::atomic<std::uint64_t> seal;  // kSealMagic once fully initialised
  std::uint32_t world;
  std::uint32_t ring_bytes;
  std::atomic<std::uint32_t> closed;
  std::atomic<std::int32_t> root_dead;
  std::atomic<std::uint32_t> dead[kMaxRanks];
  sem_t doorbells[kMaxRanks];
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free &&
                  std::atomic<std::uint32_t>::is_always_lock_free &&
                  std::atomic<std::int32_t>::is_always_lock_free,
              "shared-memory flags must be lock-free to work across "
              "processes");

ShmArena::Ring& ShmArena::ring(int from, int to) const {
  auto* rings = reinterpret_cast<Ring*>(
      static_cast<char*>(map_) + sizeof(Header));
  return rings[from * world_size_ + to];
}

std::uint8_t* ShmArena::ring_data(int from, int to) const {
  auto* base = reinterpret_cast<std::uint8_t*>(
      static_cast<char*>(map_) + sizeof(Header) +
      sizeof(Ring) * static_cast<std::size_t>(world_size_ * world_size_));
  return base + static_cast<std::size_t>(from * world_size_ + to) *
                    ring_bytes_;
}

ShmArena::ShmArena(const std::string& name, int world_size,
                   std::uint32_t ring_bytes)
    : name_(name), world_size_(world_size), ring_bytes_(ring_bytes) {
  PAC_CHECK(world_size > 0 && world_size <= kMaxRanks,
            "shm arena world size " << world_size << " out of range [1, "
                                    << kMaxRanks << "]");
  PAC_CHECK(ring_bytes >= 4096, "shm ring too small: " << ring_bytes);
  const std::size_t links =
      static_cast<std::size_t>(world_size) * static_cast<std::size_t>(world_size);
  map_len_ = sizeof(Header) + links * sizeof(Ring) +
             links * static_cast<std::size_t>(ring_bytes);

  int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  const bool creator = fd >= 0;
  if (!creator) {
    if (errno != EEXIST) throw_errno("shm_open(create) " + name);
    fd = ::shm_open(name.c_str(), O_RDWR, 0600);
    if (fd < 0) throw_errno("shm_open(attach) " + name);
  }
  if (creator) {
    if (::ftruncate(fd, static_cast<off_t>(map_len_)) != 0) {
      ::close(fd);
      throw_errno("ftruncate " + name);
    }
  } else {
    // The creator may still be sizing the segment; wait for it.
    struct stat st {};
    for (int spin = 0;; ++spin) {
      if (::fstat(fd, &st) != 0) {
        ::close(fd);
        throw_errno("fstat " + name);
      }
      if (static_cast<std::size_t>(st.st_size) >= map_len_) break;
      if (spin > 5000) {
        ::close(fd);
        throw TransportError("shm: arena " + name + " never reached size");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  map_ = ::mmap(nullptr, map_len_, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (map_ == MAP_FAILED) {
    map_ = nullptr;
    throw_errno("mmap " + name);
  }
  header_ = static_cast<Header*>(map_);
  if (creator) {
    std::memset(map_, 0, map_len_);
    new (&header_->seal) std::atomic<std::uint64_t>(0);
    header_->world = static_cast<std::uint32_t>(world_size);
    header_->ring_bytes = ring_bytes;
    new (&header_->closed) std::atomic<std::uint32_t>(0);
    new (&header_->root_dead) std::atomic<std::int32_t>(-1);
    for (int r = 0; r < kMaxRanks; ++r) {
      new (&header_->dead[r]) std::atomic<std::uint32_t>(0);
    }
    for (int r = 0; r < world_size; ++r) {
      if (::sem_init(&header_->doorbells[r], /*pshared=*/1, 0) != 0) {
        throw_errno("sem_init " + name);
      }
    }
    for (int from = 0; from < world_size; ++from) {
      for (int to = 0; to < world_size; ++to) {
        Ring& r = ring(from, to);
        new (&r.head) std::atomic<std::uint64_t>(0);
        new (&r.tail) std::atomic<std::uint64_t>(0);
      }
    }
    header_->seal.store(kSealMagic, std::memory_order_release);
  } else {
    for (int spin = 0;; ++spin) {
      if (header_->seal.load(std::memory_order_acquire) == kSealMagic) break;
      if (spin > 5000) {
        throw TransportError("shm: arena " + name + " never initialised");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (header_->world != static_cast<std::uint32_t>(world_size) ||
        header_->ring_bytes != ring_bytes) {
      throw TransportError("shm: arena " + name +
                           " layout mismatch (world/ring size)");
    }
  }
}

ShmArena::~ShmArena() {
  if (map_ != nullptr) ::munmap(map_, map_len_);
}

void ShmArena::unlink(const std::string& name) { ::shm_unlink(name.c_str()); }

bool ShmArena::mark_rank_dead(const std::string& name, int rank) {
  int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) return false;
  void* map = ::mmap(nullptr, sizeof(Header), PROT_READ | PROT_WRITE,
                     MAP_SHARED, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) return false;
  auto* header = static_cast<Header*>(map);
  bool marked = false;
  if (header->seal.load(std::memory_order_acquire) == kSealMagic &&
      rank >= 0 && rank < static_cast<int>(header->world)) {
    header->dead[rank].store(1);
    std::int32_t expected = -1;
    header->root_dead.compare_exchange_strong(expected, rank);
    for (std::uint32_t r = 0; r < header->world; ++r) {
      ::sem_post(&header->doorbells[r]);
    }
    marked = true;
  }
  ::munmap(map, sizeof(Header));
  return marked;
}

bool ShmArena::write_bytes(int from, int to, const std::uint8_t* data,
                           std::size_t len) {
  Ring& r = ring(from, to);
  std::uint8_t* buf = ring_data(from, to);
  std::size_t done = 0;
  while (done < len) {
    const std::uint64_t head = r.head.load(std::memory_order_acquire);
    const std::uint64_t tail = r.tail.load(std::memory_order_relaxed);
    const std::uint64_t space = ring_bytes_ - (tail - head);
    if (space == 0) {
      if (is_closed() || is_dead(to) || is_dead(from)) return false;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      continue;
    }
    const std::size_t n =
        std::min<std::size_t>(len - done, static_cast<std::size_t>(space));
    const std::size_t pos = static_cast<std::size_t>(tail % ring_bytes_);
    const std::size_t first = std::min(n, ring_bytes_ - pos);
    std::memcpy(buf + pos, data + done, first);
    std::memcpy(buf, data + done + first, n - first);
    r.tail.store(tail + n, std::memory_order_release);
    done += n;
    post_doorbell(to);
  }
  return true;
}

std::size_t ShmArena::read_bytes(int from, int to, std::uint8_t* out,
                                 std::size_t cap) {
  Ring& r = ring(from, to);
  const std::uint8_t* buf = ring_data(from, to);
  const std::uint64_t tail = r.tail.load(std::memory_order_acquire);
  const std::uint64_t head = r.head.load(std::memory_order_relaxed);
  const std::size_t avail = static_cast<std::size_t>(tail - head);
  const std::size_t n = std::min(avail, cap);
  if (n == 0) return 0;
  const std::size_t pos = static_cast<std::size_t>(head % ring_bytes_);
  const std::size_t first = std::min(n, ring_bytes_ - pos);
  std::memcpy(out, buf + pos, first);
  std::memcpy(out + first, buf, n - first);
  r.head.store(head + n, std::memory_order_release);
  return n;
}

bool ShmArena::ring_empty(int from, int to) const {
  Ring& r = ring(from, to);
  return r.tail.load(std::memory_order_acquire) ==
         r.head.load(std::memory_order_relaxed);
}

void ShmArena::set_closed() {
  header_->closed.store(1);
  post_all_doorbells();
}

bool ShmArena::is_closed() const { return header_->closed.load() != 0; }

void ShmArena::set_dead(int rank) {
  header_->dead[rank].store(1);
  post_all_doorbells();
}

bool ShmArena::is_dead(int rank) const {
  return header_->dead[rank].load() != 0;
}

void ShmArena::set_root_dead(int rank) {
  std::int32_t expected = -1;
  header_->root_dead.compare_exchange_strong(
      expected, static_cast<std::int32_t>(rank));
}

int ShmArena::root_dead() const {
  return static_cast<int>(header_->root_dead.load());
}

void ShmArena::post_doorbell(int rank) {
  ::sem_post(&header_->doorbells[rank]);
}

void ShmArena::post_all_doorbells() {
  for (int r = 0; r < world_size_; ++r) post_doorbell(r);
}

bool ShmArena::wait_doorbell(int rank, int timeout_ms) {
  struct timespec deadline {};
  ::clock_gettime(CLOCK_REALTIME, &deadline);
  deadline.tv_nsec += static_cast<long>(timeout_ms) * 1000000L;
  deadline.tv_sec += deadline.tv_nsec / 1000000000L;
  deadline.tv_nsec %= 1000000000L;
  while (::sem_timedwait(&header_->doorbells[rank], &deadline) != 0) {
    if (errno == EINTR) continue;
    return false;  // ETIMEDOUT (or EINVAL under clock skew): just re-poll
  }
  return true;
}

// ---------------------------------------------------------------------------
// ShmTransport

ShmTransport::ShmTransport(std::shared_ptr<ShmArena> arena, int rank,
                           LinkModel link, FaultPlan faults)
    : RemoteEndpointBase(arena->world_size(), rank, link, std::move(faults)),
      arena_(std::move(arena)),
      decoders_(static_cast<std::size_t>(world_size()),
                wire::FrameDecoder(world_size())) {
  pump_ = std::thread([this] { pump_main(); });
}

ShmTransport::ShmTransport(const std::string& arena_name, int world_size,
                           int rank, LinkModel link, FaultPlan faults)
    : ShmTransport(std::make_shared<ShmArena>(arena_name, world_size), rank,
                   link, std::move(faults)) {}

ShmTransport::~ShmTransport() {
  stop_.store(true);
  arena_->post_doorbell(rank_);
  if (pump_.joinable()) pump_.join();
}

void ShmTransport::report_root_death(int rank) {
  arena_->set_root_dead(rank);
  Transport::report_root_death(rank);
}

int ShmTransport::first_dead_rank() const {
  const int shared = arena_->root_dead();
  return shared >= 0 ? shared : Transport::first_dead_rank();
}

void ShmTransport::wire_send(int to, const std::vector<std::uint8_t>& frame) {
  if (!arena_->write_bytes(rank_, to, frame.data(), frame.size())) {
    if (arena_->is_closed() || closed()) {
      throw ChannelClosedError("send on closed transport");
    }
    throw PeerDeadError(to, "send to dead rank " + std::to_string(to));
  }
}

void ShmTransport::on_close_rank(int rank) { arena_->set_dead(rank); }

void ShmTransport::on_close() { arena_->set_closed(); }

void ShmTransport::mirror_shared_state() {
  if (arena_->is_closed()) mark_closed_local();
  for (int r = 0; r < world_size(); ++r) {
    if (arena_->is_dead(r)) mark_dead_local(r);
  }
  const int root = arena_->root_dead();
  if (root >= 0) Transport::report_root_death(root);
}

void ShmTransport::pump_main() {
  std::uint8_t buf[64 * 1024];
  try {
    while (!stop_.load()) {
      arena_->wait_doorbell(rank_, /*timeout_ms=*/2);
      mirror_shared_state();
      if (closed()) break;
      for (int from = 0; from < world_size(); ++from) {
        if (from == rank_) continue;
        std::size_t n = 0;
        while ((n = arena_->read_bytes(from, rank_, buf, sizeof(buf))) > 0) {
          auto& decoder = decoders_[static_cast<std::size_t>(from)];
          decoder.feed(buf, n);
          while (auto frame = decoder.next()) handle_frame(std::move(*frame));
        }
        if (rank_dead(from) && !drained(from) &&
            arena_->ring_empty(from, rank_)) {
          // Everything the dead rank published has been delivered; any
          // partial trailing frame in the decoder is discarded.
          set_drained(from);
        }
      }
    }
  } catch (const Error&) {
    // Corrupt ring or decoder poison: fail the whole world rather than
    // hang — receivers unwind with ChannelClosedError.
    arena_->set_closed();
    mark_closed_local();
  }
}

}  // namespace pac::dist
