#include "dist/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "common/error.hpp"
#include "dist/communicator.hpp"  // backoff_jitter
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace pac::dist {

namespace {

bool send_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// send_all for a non-blocking socket (the receiver-side ack path): waits
// for writability up to `timeout_ms` per stall instead of failing on
// EAGAIN.
bool send_all_poll(int fd, const std::uint8_t* data, std::size_t len,
                   int timeout_ms) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpTransport::TcpTransport(int world_size, int rank, std::uint16_t bind_port,
                           LinkModel link, FaultPlan faults, TcpTuning tuning)
    : RemoteEndpointBase(world_size, rank, link, std::move(faults)),
      tuning_(std::move(tuning)),
      peers_(static_cast<std::size_t>(world_size)),
      rx_(static_cast<std::size_t>(world_size)) {
  PAC_CHECK(tuning_.reconnect_budget >= 0,
            "tcp: reconnect budget must be non-negative");
  PAC_CHECK(tuning_.retransmit_buffer_frames > 0,
            "tcp: retransmit buffer needs at least one slot");
  for (int i = 0; i < world_size; ++i) {
    io_mutex_.push_back(std::make_unique<std::mutex>());
    out_.push_back(std::make_unique<OutLink>());
    out_.back()->acks = make_decoder();
    degraded_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw TransportError("tcp: socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(bind_port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    throw TransportError("tcp: bind port " + std::to_string(bind_port) +
                         ": " + why);
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, world_size + 4) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    throw TransportError("tcp: listen: " + why);
  }
  acceptor_ = std::thread([this] { accept_main(); });
}

TcpTransport::~TcpTransport() {
  stop_.store(true);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  {
    std::lock_guard<std::mutex> guard(conns_mutex_);
    for (auto& conn : conns_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (auto& conn : conns_) {
    if (conn->rx.joinable()) conn->rx.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
  for (int p = 0; p < world_size(); ++p) {
    std::lock_guard<std::mutex> guard(*io_mutex_[static_cast<std::size_t>(p)]);
    OutLink& l = *out_[static_cast<std::size_t>(p)];
    if (l.fd >= 0) {
      ::close(l.fd);
      l.fd = -1;
    }
  }
}

void TcpTransport::set_peer(int rank, TcpPeer peer) {
  check_rank(rank, "set_peer");
  std::lock_guard<std::mutex> guard(peers_mutex_);
  peers_[static_cast<std::size_t>(rank)] = std::move(peer);
}

void TcpTransport::set_peer_resolver(PeerResolver resolver) {
  std::lock_guard<std::mutex> guard(peers_mutex_);
  resolver_ = std::move(resolver);
}

wire::FrameDecoder TcpTransport::make_decoder() const {
  wire::FrameDecoder decoder(world_size());
  if (tuning_.auth_key.has_value()) decoder.set_auth_key(*tuning_.auth_key);
  return decoder;
}

bool TcpTransport::link_degraded(int rank) const {
  if (rank < 0 || rank >= world_size()) return false;
  return degraded_[static_cast<std::size_t>(rank)]->load() &&
         !rank_dead(rank);
}

void TcpTransport::accept_main() {
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 50);
    if (pr <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load()) break;
      continue;
    }
    set_nodelay(fd);
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> guard(conns_mutex_);
      conns_.push_back(std::move(conn));
    }
    raw->rx = std::thread([this, raw] { rx_main(raw); });
  }
}

void TcpTransport::observe_peer_gone(int peer) {
  // The link is gone for good (legacy EOF, or a reconnect budget spent):
  // whoever nobody declared dead yet becomes the root-cause record.
  if (peer < 0 || peer >= world_size()) return;
  if (!rank_dead(peer) && !closed() && !stop_.load()) {
    report_root_death(peer);
  }
  degraded_[static_cast<std::size_t>(peer)]->store(false);
  mark_dead_local(peer);
  set_drained(peer);
}

void TcpTransport::observe_link_eof(Connection* conn) {
  const int peer = conn->peer.load();
  if (peer < 0 || peer >= world_size()) return;
  if (!reconnect_enabled()) {
    // Legacy failure detector: the wire's EOF IS the death certificate.
    observe_peer_gone(peer);
    return;
  }
  {
    std::lock_guard<std::mutex> guard(rx_mutex_);
    // Losing a stale (already superseded) connection is not news.
    if (rx_[static_cast<std::size_t>(peer)].live != conn) return;
  }
  if (!rank_dead(peer) && !closed() && !stop_.load()) {
    // Link loss under a reconnect budget: freeze judgement until the
    // sender either resyncs (adoption clears the flag) or collapses the
    // link (death clears it).
    degraded_[static_cast<std::size_t>(peer)]->store(true);
  }
}

// ---------------------------------------------------------------------------
// Receive path

void TcpTransport::rx_main(Connection* conn) {
  rx_loop(conn);
  const int peer = conn->peer.load();
  // Publication order matters: `done` must be visible before the dead-rank
  // check so note_dead_rank and this exit path can't both skip the drain.
  conn->done.store(true);
  if (peer >= 0 && peer < world_size() && rank_dead(peer)) {
    maybe_set_drained(peer);
  }
}

void TcpTransport::rx_loop(Connection* conn) {
  wire::FrameDecoder decoder = make_decoder();
  std::uint8_t buf[64 * 1024];
  bool hello_done = false;
  bool adopted = false;
  bool death_seen = false;
  int quiet_polls = 0;
  while (!stop_.load() && !closed()) {
    const int peer = conn->peer.load();
    if (hello_done && rank_dead(peer)) {
      // Peer is dead: two empty polls in a row ≈ the loopback wire has
      // quiesced; everything it sent beforehand has been deposited.  The
      // count starts at the first poll issued AFTER the death is known —
      // quiet stretches before that (e.g. death arrived as gossip on
      // another connection during an idle period) prove nothing about
      // bytes still sitting in this socket's buffer.  rx_main flips the
      // world's drained bit once every connection from the peer has
      // quiesced this way.
      if (!death_seen) {
        death_seen = true;
        quiet_polls = 0;
      }
      if (quiet_polls >= 2) return;
    }
    pollfd pfd{conn->fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 2);
    if (pr <= 0) {
      ++quiet_polls;
      continue;
    }
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR)) {
      if (hello_done) observe_link_eof(conn);
      return;
    }
    if (n < 0) {
      ++quiet_polls;
      continue;
    }
    quiet_polls = 0;
    try {
      decoder.feed(buf, static_cast<std::size_t>(n));
      while (auto frame = decoder.next()) {
        if (!hello_done) {
          if (frame->type != wire::FrameType::kHello) {
            throw TransportError("tcp: connection did not start with HELLO");
          }
          conn->peer.store(frame->src);
          hello_done = true;
          continue;
        }
        const int src = conn->peer.load();
        if (frame->type == wire::FrameType::kResync) {
          // Reconnect handshake: adopt (or reject) this connection for the
          // proposed epoch and tell the sender how much already arrived.
          const auto delivered =
              adopt_connection(conn, src, frame->resync_epoch);
          if (!delivered.has_value()) return;  // stale epoch: drop it
          adopted = true;
          send_ack(conn, *delivered);
          continue;
        }
        if (!adopted) {
          // First logical frame on a fresh link: implicit epoch-0 adoption
          // (initial connections carry no RESYNC preamble).
          if (!adopt_connection(conn, src, 0).has_value()) return;
          adopted = true;
        }
        if (!deliver_logical(conn, src, std::move(*frame))) return;
      }
    } catch (const Error&) {
      // Malformed (or tamper-poisoned) stream: the connection cannot be
      // trusted past this point; drop it and let the sender re-earn the
      // link through a resync (or the legacy path declare the peer dead).
      if (hello_done) observe_link_eof(conn);
      return;
    }
  }
}

std::optional<std::uint64_t> TcpTransport::adopt_connection(
    Connection* conn, int src, std::uint32_t epoch) {
  if (src < 0 || src >= world_size()) return std::nullopt;
  std::lock_guard<std::mutex> guard(rx_mutex_);
  RxState& rx = rx_[static_cast<std::size_t>(src)];
  if (rx.live == conn) {
    // Duplicate resync on the connection we already adopted: re-reply.
    return rx.delivered;
  }
  const bool initial = rx.live == nullptr && rx.epoch == 0 && epoch == 0;
  if (initial || epoch > rx.epoch) {
    // Strictly-greater epochs only: a sender retry that lost the reply
    // bumps its epoch per attempt, so anything ≤ the adopted epoch is a
    // leftover (or replayed) connection that must never deliver.
    rx.live = conn;
    rx.epoch = epoch;
    conn->epoch = epoch;
    degraded_[static_cast<std::size_t>(src)]->store(false);
    return rx.delivered;
  }
  return std::nullopt;
}

bool TcpTransport::deliver_logical(Connection* conn, int src,
                                   wire::Frame frame) {
  const wire::FrameType type = frame.type;
  std::uint64_t delivered = 0;
  bool ack_due = false;
  {
    std::lock_guard<std::mutex> guard(rx_mutex_);
    RxState& rx = rx_[static_cast<std::size_t>(src)];
    if (rx.live != conn) return false;  // superseded mid-buffer
    delivered = ++rx.delivered;
    ack_due = tuning_.ack_interval > 0 &&
              delivered % tuning_.ack_interval == 0;
    if (type == wire::FrameType::kData) {
      // The count and the mailbox deposit must be atomic against a
      // concurrent resync snapshot, or a reconnect could replay
      // (duplicate) or skip (lose) exactly this frame.
      handle_frame(std::move(frame));
    }
  }
  // Control frames dispatch outside rx_mutex_: death gossip re-broadcasts
  // over the send links, and holding a receive lock across send mutexes
  // invites cross-endpoint lock cycles.  The count-then-dispatch gap is
  // safe — these handlers are idempotent.
  switch (type) {
    case wire::FrameType::kData:
      break;
    case wire::FrameType::kRankDead:
      note_dead_rank(frame.src);
      break;
    case wire::FrameType::kRootDead:
      // Re-gossips only if this is news here (CAS guard), so the
      // propagation terminates after one round.
      report_root_death(frame.src);
      break;
    default:
      handle_frame(std::move(frame));  // kClose; anything else throws
      break;
  }
  if (ack_due) send_ack(conn, delivered);
  return true;
}

void TcpTransport::send_ack(Connection* conn, std::uint64_t delivered) {
  auto ack = wire::encode_resync(rank_, conn->epoch, delivered);
  if (tuning_.auth_key.has_value()) {
    wire::authenticate(ack, *tuning_.auth_key);
  }
  // Best effort: a lost ack only delays retransmit-buffer trimming; the
  // resync handshake is the authoritative recovery point.
  send_all_poll(conn->fd, ack.data(), ack.size(), 50);
}

void TcpTransport::note_dead_rank(int rank) {
  if (rank < 0 || rank >= world_size()) return;
  mark_dead_local(rank);
  maybe_set_drained(rank);
}

void TcpTransport::maybe_set_drained(int rank) {
  {
    std::lock_guard<std::mutex> guard(conns_mutex_);
    for (const auto& conn : conns_) {
      if (conn->peer.load() == rank && !conn->done.load()) {
        return;  // a live rx thread will drain and re-check on exit
      }
    }
  }
  // No inbound link from that rank still running: nothing can be in
  // flight.
  set_drained(rank);
}

// ---------------------------------------------------------------------------
// Send path

int TcpTransport::dial(int to, int deadline_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (true) {
    TcpPeer peer;
    PeerResolver resolver;
    {
      std::lock_guard<std::mutex> guard(peers_mutex_);
      peer = peers_[static_cast<std::size_t>(to)];
      resolver = resolver_;
    }
    if (peer.port == 0) {
      if (!resolver) return -1;  // nothing will ever resolve this rank
      if (auto found = resolver(to);
          found.has_value() && found->port != 0) {
        set_peer(to, *found);
        peer = *found;
      }
    }
    if (peer.port != 0) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) return -1;
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(peer.port);
      if (::inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return -1;
      }
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        set_nodelay(fd);
        return fd;
      }
      ::close(fd);
    }
    if (std::chrono::steady_clock::now() >= deadline || stop_.load() ||
        closed() || rank_dead(to)) {
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void TcpTransport::establish_fresh_locked(OutLink& l, int to) {
  const int fd = dial(to, tuning_.connect_timeout_ms);
  if (fd < 0) {
    throw TransportError("tcp: no route to rank " + std::to_string(to));
  }
  auto hello = wire::encode_control(wire::FrameType::kHello, rank_);
  if (tuning_.auth_key.has_value()) {
    wire::authenticate(hello, *tuning_.auth_key);
  }
  if (!send_all(fd, hello.data(), hello.size())) {
    ::close(fd);
    throw TransportError("tcp: no route to rank " + std::to_string(to));
  }
  l.fd = fd;
  l.ever_connected = true;
  l.acks = make_decoder();
}

std::optional<std::uint64_t> TcpTransport::await_resync_reply(
    int fd, int to, std::uint32_t epoch) {
  wire::FrameDecoder decoder = make_decoder();
  std::uint8_t buf[4096];
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(tuning_.reconnect_timeout_ms);
  while (std::chrono::steady_clock::now() < deadline && !stop_.load() &&
         !closed()) {
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 10);
    if (pr <= 0) continue;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return std::nullopt;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return std::nullopt;
    }
    try {
      decoder.feed(buf, static_cast<std::size_t>(n));
      while (auto frame = decoder.next()) {
        if (frame->type != wire::FrameType::kResync) return std::nullopt;
        if (frame->src == to && frame->resync_epoch == epoch) {
          return frame->resync_delivered;
        }
        // An ack for an older epoch raced in; keep waiting for ours.
      }
    } catch (const Error&) {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

bool TcpTransport::reconnect_locked(OutLink& l, int to) {
  if (l.fd >= 0) {
    ::close(l.fd);
    l.fd = -1;
  }
  if (!reconnect_enabled()) return false;
  degraded_[static_cast<std::size_t>(to)]->store(true);
  PAC_TRACE_SCOPE("wire_reconnect", rank_, to);
  auto& counters = obs::CounterRegistry::instance();
  for (int attempt = 0; attempt < tuning_.reconnect_budget; ++attempt) {
    if (stop_.load() || closed() || rank_dead(to)) break;
    const double capped_ms = std::min(
        tuning_.backoff_max_ms, tuning_.backoff_base_ms * std::pow(2.0, attempt));
    const double sleep_ms =
        capped_ms * backoff_jitter(tuning_.backoff_seed, to, attempt);
    if (sleep_ms > 0.0) {
      counters.add("wire.backoff_sleep_us",
                   static_cast<std::int64_t>(sleep_ms * 1000.0));
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(sleep_ms));
    }
    const int fd = dial(to, tuning_.reconnect_timeout_ms);
    if (fd < 0) continue;
    // A fresh epoch per ATTEMPT: if the receiver adopted an earlier try
    // but the reply got lost, retrying under the same epoch would be
    // rejected as stale forever.
    const std::uint32_t epoch = ++l.epoch;
    auto hello = wire::encode_control(wire::FrameType::kHello, rank_);
    auto resync = wire::encode_resync(rank_, epoch, 0);
    if (tuning_.auth_key.has_value()) {
      wire::authenticate(hello, *tuning_.auth_key);
      wire::authenticate(resync, *tuning_.auth_key);
    }
    if (!send_all(fd, hello.data(), hello.size()) ||
        !send_all(fd, resync.data(), resync.size())) {
      ::close(fd);
      continue;
    }
    const auto delivered = await_resync_reply(fd, to, epoch);
    if (!delivered.has_value()) {
      ::close(fd);
      continue;
    }
    // The receiver kept everything below `delivered`; replay the rest.
    while (!l.unacked.empty() && l.unacked.front().first < *delivered) {
      l.unacked.pop_front();
    }
    if (*delivered > l.acked) l.acked = *delivered;
    if (!l.unacked.empty() && l.unacked.front().first > *delivered) {
      // The receiver missed frames the bounded buffer no longer holds —
      // exactly-once is unrecoverable; collapse instead of corrupting.
      ::close(fd);
      break;
    }
    bool replay_ok = true;
    std::size_t replayed = 0;
    for (const auto& [seq, bytes] : l.unacked) {
      if (!send_all(fd, bytes.data(), bytes.size())) {
        replay_ok = false;
        break;
      }
      ++replayed;
    }
    if (!replay_ok) {
      ::close(fd);
      continue;
    }
    l.fd = fd;
    l.acks = make_decoder();
    counters.add("wire.reconnects", 1);
    counters.add("wire.retransmit_frames",
                 static_cast<std::int64_t>(replayed));
    degraded_[static_cast<std::size_t>(to)]->store(false);
    return true;
  }
  degraded_[static_cast<std::size_t>(to)]->store(false);
  return false;
}

void TcpTransport::drain_acks_locked(OutLink& l, int to) {
  if (l.fd < 0) return;
  std::uint8_t buf[4096];
  while (true) {
    const ssize_t n = ::recv(l.fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      // EOF / hard error on the ack channel: the socket is dying; drop it
      // so the caller's reconnect path takes over.
      ::close(l.fd);
      l.fd = -1;
      l.acks = make_decoder();
      return;
    }
    try {
      l.acks.feed(buf, static_cast<std::size_t>(n));
      while (auto frame = l.acks.next()) {
        if (frame->type != wire::FrameType::kResync || frame->src != to) {
          throw TransportError("tcp: unexpected frame on the ack channel");
        }
        if (frame->resync_delivered > l.acked) {
          l.acked = frame->resync_delivered;
        }
      }
    } catch (const Error&) {
      ::close(l.fd);
      l.fd = -1;
      l.acks = make_decoder();
      return;
    }
  }
  while (!l.unacked.empty() && l.unacked.front().first < l.acked) {
    l.unacked.pop_front();
  }
}

bool TcpTransport::wait_buffer_space_locked(OutLink& l, int to,
                                            bool allow_reconnect) {
  // Bound forced-reconnect rounds that make no trimming progress so a
  // receiver whose rx thread is wedged cannot spin us forever.
  int stalls = 0;
  while (l.unacked.size() >= tuning_.retransmit_buffer_frames) {
    if (stop_.load() || closed()) return false;
    const std::size_t before = l.unacked.size();
    if (l.fd < 0) {
      if (!allow_reconnect || !reconnect_locked(l, to)) return false;
    } else {
      pollfd pfd{l.fd, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, tuning_.reconnect_timeout_ms);
      if (pr > 0) {
        drain_acks_locked(l, to);
      } else {
        // No ack inside a whole reconnect window: treat the link as
        // wedged and force a resync (its reply carries the authoritative
        // delivered count, which trims the buffer).
        ::close(l.fd);
        l.fd = -1;
      }
    }
    if (l.unacked.size() >= before) {
      if (++stalls > tuning_.reconnect_budget + 1) return false;
    } else {
      stalls = 0;
    }
  }
  return true;
}

bool TcpTransport::send_logical_locked(OutLink& l, int to,
                                       std::vector<std::uint8_t> bytes,
                                       bool allow_reconnect) {
  if (l.fd < 0) {
    if (!l.ever_connected) {
      establish_fresh_locked(l, to);  // throws when no route exists
    } else if (!allow_reconnect || !reconnect_locked(l, to)) {
      return false;
    }
  }
  drain_acks_locked(l, to);
  if (l.fd < 0 && (!allow_reconnect || !reconnect_locked(l, to))) {
    return false;
  }
  if (!wait_buffer_space_locked(l, to, allow_reconnect)) return false;
  l.unacked.emplace_back(l.tx_seq, std::move(bytes));
  ++l.tx_seq;
  const auto& frame = l.unacked.back().second;
  if (!send_all(l.fd, frame.data(), frame.size())) {
    ::close(l.fd);
    l.fd = -1;
    // reconnect_locked replays the whole unacked suffix — including the
    // frame we just buffered — so success here means it is on the wire.
    if (!allow_reconnect || !reconnect_locked(l, to)) return false;
  }
  if (l.fd >= 0 && faults_.active() && faults_.tcp_cut_due(rank_, to)) {
    // Injected link cut, applied AFTER the frame went out: the receiver
    // sees a clean EOF (degraded link), and the next send reconnects.
    ::close(l.fd);
    l.fd = -1;
  }
  return true;
}

void TcpTransport::wire_send(int to, const std::vector<std::uint8_t>& frame) {
  std::lock_guard<std::mutex> guard(*io_mutex_[static_cast<std::size_t>(to)]);
  OutLink& l = *out_[static_cast<std::size_t>(to)];
  std::vector<std::uint8_t> bytes = frame;
  if (tuning_.auth_key.has_value()) {
    wire::authenticate(bytes, *tuning_.auth_key);
  }
  if (!send_logical_locked(l, to, std::move(bytes), reconnect_enabled())) {
    observe_peer_gone(to);
    throw PeerDeadError(to, "send to dead rank " + std::to_string(to) +
                                " (connection lost)");
  }
}

void TcpTransport::report_root_death(int rank) {
  check_rank(rank, "report_root_death");
  int expected = -1;
  if (root_dead_.compare_exchange_strong(expected, rank)) {
    // We hold the first report: share it.  The dead rank itself is skipped
    // both because it has nothing to learn and because the caller may be a
    // failed wire_send still holding that link's io mutex.
    send_control_everywhere(
        wire::encode_control(wire::FrameType::kRootDead, rank), rank);
  }
}

void TcpTransport::send_control_everywhere(
    const std::vector<std::uint8_t>& frame, int skip_rank) {
  for (int p = 0; p < world_size(); ++p) {
    if (p == rank_ || p == skip_rank) continue;
    std::lock_guard<std::mutex> guard(
        *io_mutex_[static_cast<std::size_t>(p)]);
    OutLink& l = *out_[static_cast<std::size_t>(p)];
    std::vector<std::uint8_t> bytes = frame;
    if (tuning_.auth_key.has_value()) {
      wire::authenticate(bytes, *tuning_.auth_key);
    }
    try {
      // Best effort, and no reconnect loops during shutdown gossip; the
      // frame still joins the logical stream (and the retransmit buffer),
      // so a later data send's resync replays it.
      send_logical_locked(l, p, std::move(bytes), /*allow_reconnect=*/false);
    } catch (const Error&) {
      // Unreachable peer: best effort only.
    }
  }
}

void TcpTransport::on_close_rank(int rank) {
  send_control_everywhere(
      wire::encode_control(wire::FrameType::kRankDead, rank));
  note_dead_rank(rank);
}

void TcpTransport::on_close() {
  send_control_everywhere(wire::encode_control(wire::FrameType::kClose, rank_));
}

}  // namespace pac::dist
