#include "dist/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/error.hpp"

namespace pac::dist {

namespace {

bool send_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpTransport::TcpTransport(int world_size, int rank, std::uint16_t bind_port,
                           LinkModel link, FaultPlan faults)
    : RemoteEndpointBase(world_size, rank, link, std::move(faults)),
      peers_(static_cast<std::size_t>(world_size)),
      out_fd_(static_cast<std::size_t>(world_size), -1) {
  for (int i = 0; i < world_size; ++i) {
    io_mutex_.push_back(std::make_unique<std::mutex>());
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw TransportError("tcp: socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(bind_port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    throw TransportError("tcp: bind port " + std::to_string(bind_port) +
                         ": " + why);
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, world_size + 4) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    throw TransportError("tcp: listen: " + why);
  }
  acceptor_ = std::thread([this] { accept_main(); });
}

TcpTransport::~TcpTransport() {
  stop_.store(true);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  {
    std::lock_guard<std::mutex> guard(conns_mutex_);
    for (auto& conn : conns_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (auto& conn : conns_) {
    if (conn->rx.joinable()) conn->rx.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
  for (int p = 0; p < world_size(); ++p) {
    std::lock_guard<std::mutex> guard(*io_mutex_[static_cast<std::size_t>(p)]);
    if (out_fd_[static_cast<std::size_t>(p)] >= 0) {
      ::close(out_fd_[static_cast<std::size_t>(p)]);
      out_fd_[static_cast<std::size_t>(p)] = -1;
    }
  }
}

void TcpTransport::set_peer(int rank, TcpPeer peer) {
  check_rank(rank, "set_peer");
  std::lock_guard<std::mutex> guard(peers_mutex_);
  peers_[static_cast<std::size_t>(rank)] = std::move(peer);
}

void TcpTransport::accept_main() {
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 50);
    if (pr <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load()) break;
      continue;
    }
    set_nodelay(fd);
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> guard(conns_mutex_);
      conns_.push_back(std::move(conn));
    }
    raw->rx = std::thread([this, raw] { rx_main(raw); });
  }
}

void TcpTransport::observe_peer_gone(int peer) {
  // EOF / reset from a peer that nobody declared dead yet: the wire itself
  // is the failure detector.
  if (peer < 0 || peer >= world_size()) return;
  if (!rank_dead(peer) && !closed() && !stop_.load()) {
    report_root_death(peer);
  }
  mark_dead_local(peer);
  set_drained(peer);
}

void TcpTransport::rx_main(Connection* conn) {
  wire::FrameDecoder decoder(world_size());
  std::uint8_t buf[64 * 1024];
  bool hello_done = false;
  bool death_seen = false;
  int quiet_polls = 0;
  while (!stop_.load() && !closed()) {
    const int peer = conn->peer.load();
    if (hello_done && rank_dead(peer)) {
      // Peer is dead: two empty polls in a row ≈ the loopback wire has
      // quiesced; everything it sent beforehand has been deposited.  The
      // count starts at the first poll issued AFTER the death is known —
      // quiet stretches before that (e.g. death arrived as gossip on
      // another connection during an idle period) prove nothing about
      // bytes still sitting in this socket's buffer.
      if (!death_seen) {
        death_seen = true;
        quiet_polls = 0;
      }
      if (quiet_polls >= 2) {
        set_drained(peer);
        return;
      }
    }
    pollfd pfd{conn->fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 2);
    if (pr <= 0) {
      ++quiet_polls;
      continue;
    }
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR)) {
      if (hello_done) observe_peer_gone(conn->peer.load());
      return;
    }
    if (n < 0) {
      ++quiet_polls;
      continue;
    }
    quiet_polls = 0;
    try {
      decoder.feed(buf, static_cast<std::size_t>(n));
      while (auto frame = decoder.next()) {
        if (!hello_done) {
          if (frame->type != wire::FrameType::kHello) {
            throw TransportError("tcp: connection did not start with HELLO");
          }
          conn->peer.store(frame->src);
          hello_done = true;
          continue;
        }
        if (frame->type == wire::FrameType::kRankDead) {
          note_dead_rank(frame->src);
        } else if (frame->type == wire::FrameType::kRootDead) {
          // Re-gossips only if this is news here (CAS guard), so the
          // propagation terminates after one round.
          report_root_death(frame->src);
        } else {
          handle_frame(std::move(*frame));
        }
      }
    } catch (const Error&) {
      // Malformed stream: drop the connection; if the peer was known,
      // treat it like a crash.
      if (hello_done) observe_peer_gone(conn->peer.load());
      return;
    }
  }
}

void TcpTransport::note_dead_rank(int rank) {
  if (rank < 0 || rank >= world_size()) return;
  mark_dead_local(rank);
  {
    std::lock_guard<std::mutex> guard(conns_mutex_);
    for (const auto& conn : conns_) {
      if (conn->peer.load() == rank) return;  // its rx thread drains
    }
  }
  // No inbound link from that rank: nothing can be in flight.
  set_drained(rank);
}

int TcpTransport::connect_to(int to) {
  TcpPeer peer;
  {
    std::lock_guard<std::mutex> guard(peers_mutex_);
    peer = peers_[static_cast<std::size_t>(to)];
  }
  if (peer.port == 0) return -1;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(peer.port);
    if (::inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      set_nodelay(fd);
      const auto hello =
          wire::encode_control(wire::FrameType::kHello, rank_);
      if (!send_all(fd, hello.data(), hello.size())) {
        ::close(fd);
        return -1;
      }
      return fd;
    }
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline || stop_.load() ||
        closed() || rank_dead(to)) {
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void TcpTransport::wire_send(int to, const std::vector<std::uint8_t>& frame) {
  std::lock_guard<std::mutex> guard(*io_mutex_[static_cast<std::size_t>(to)]);
  int& fd = out_fd_[static_cast<std::size_t>(to)];
  if (fd < 0) fd = connect_to(to);
  if (fd < 0) {
    throw TransportError("tcp: no route to rank " + std::to_string(to));
  }
  if (!send_all(fd, frame.data(), frame.size())) {
    ::close(fd);
    fd = -1;
    observe_peer_gone(to);
    throw PeerDeadError(to, "send to dead rank " + std::to_string(to) +
                                " (connection lost)");
  }
}

void TcpTransport::report_root_death(int rank) {
  check_rank(rank, "report_root_death");
  int expected = -1;
  if (root_dead_.compare_exchange_strong(expected, rank)) {
    // We hold the first report: share it.  The dead rank itself is skipped
    // both because it has nothing to learn and because the caller may be a
    // failed wire_send still holding that link's io mutex.
    send_control_everywhere(
        wire::encode_control(wire::FrameType::kRootDead, rank), rank);
  }
}

void TcpTransport::send_control_everywhere(
    const std::vector<std::uint8_t>& frame, int skip_rank) {
  for (int p = 0; p < world_size(); ++p) {
    if (p == rank_ || p == skip_rank) continue;
    std::lock_guard<std::mutex> guard(
        *io_mutex_[static_cast<std::size_t>(p)]);
    int& fd = out_fd_[static_cast<std::size_t>(p)];
    if (fd < 0) fd = connect_to(p);
    if (fd < 0) continue;  // unreachable peer: best effort only
    if (!send_all(fd, frame.data(), frame.size())) {
      ::close(fd);
      fd = -1;
    }
  }
}

void TcpTransport::on_close_rank(int rank) {
  send_control_everywhere(
      wire::encode_control(wire::FrameType::kRankDead, rank));
  note_dead_rank(rank);
}

void TcpTransport::on_close() {
  send_control_everywhere(wire::encode_control(wire::FrameType::kClose, rank_));
}

}  // namespace pac::dist
