// Rendezvous service for cross-machine runs: a tiny TCP daemon where every
// rank of a run registers its listening address and fetches its peers',
// replacing the same-filesystem port-file handshake (which cannot work
// across machines).
//
// Protocol: line-based, one request per connection, newline-terminated:
//
//   PUT <run_id> <rank> <host> <port>\n   ->  OK\n
//   GET <run_id> <rank>\n                 ->  PEER <host> <port>\n | NONE\n
//   KEY <run_id>\n                        ->  KEY <32 hex chars>\n
//   anything else                         ->  ERR\n
//
// PUT upserts (a rank that restarts on a new port simply re-announces).
// KEY mints a fresh 128-bit frame-auth key per run on first request and
// returns the same key afterwards, so ranks that opt into authentication
// converge on one shared secret without any out-of-band channel.
//
// The server is deliberately single-threaded: `serve_forever()` is one
// poll loop over the listener plus in-flight client connections, so the
// multi-process launcher can bind the socket in the parent, fork, and run
// the loop in a child with no thread/fork hazards.  `start()`/`stop()`
// wrap the same loop in a background thread for in-process use (tests,
// single-host launches).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dist/tcp_transport.hpp"
#include "dist/wire.hpp"

namespace pac::dist {

class RendezvousServer {
 public:
  // Binds immediately (port 0 = kernel-assigned; read it back via port())
  // so callers can hand the address to workers before the loop runs.
  // `key_seed` makes minted auth keys deterministic (0 = random_device).
  explicit RendezvousServer(std::uint16_t port = 0,
                            std::uint64_t key_seed = 0);
  ~RendezvousServer();

  RendezvousServer(const RendezvousServer&) = delete;
  RendezvousServer& operator=(const RendezvousServer&) = delete;

  std::uint16_t port() const { return port_; }

  // Blocking poll loop; returns only after stop() (or process death — the
  // forked-launcher mode just kills the child).
  void serve_forever();

  // Background-thread convenience wrappers around serve_forever.
  void start();
  void stop();

 private:
  struct Client {
    int fd = -1;
    std::string in;
    std::string out;
    std::size_t out_off = 0;
  };
  struct Run {
    std::map<int, TcpPeer> peers;
    std::string key_hex;
  };

  std::string handle_request(const std::string& line);
  void pump_client(Client& client);

  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::uint64_t key_seed_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  std::map<std::string, Run> runs_;
  std::vector<Client> clients_;
};

// One request per call; every call opens a fresh connection, so a client
// is safe to share across threads and survives server restarts.
class RendezvousClient {
 public:
  RendezvousClient(std::string host, std::uint16_t port)
      : host_(std::move(host)), port_(port) {}

  // Registers (upserts) this rank's listening address; retries the
  // connection for `timeout_ms` (the server may still be starting).
  // Throws TransportError when the server stays unreachable.
  void announce(const std::string& run_id, int rank, const TcpPeer& self,
                int timeout_ms = 5000);
  // Single query: the peer's address if it has announced yet.
  std::optional<TcpPeer> lookup(const std::string& run_id, int rank);
  // Polls lookup until the peer appears or `timeout_ms` elapses.
  std::optional<TcpPeer> wait_peer(const std::string& run_id, int rank,
                                   int timeout_ms);
  // The run's shared frame-auth key (minted server-side on first request).
  wire::AuthKey fetch_key(const std::string& run_id);

 private:
  std::optional<std::string> request(const std::string& line,
                                     int timeout_ms);

  std::string host_;
  std::uint16_t port_;
};

}  // namespace pac::dist
