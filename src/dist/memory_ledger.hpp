// Per-device memory accounting.
//
// Each simulated edge device has a byte budget (Jetson-Nano-class devices
// give ~2.8 GB to the training process after the OS).  Components register
// allocations by category; exceeding the budget throws DeviceOomError —
// which the planner interprets as "configuration infeasible" and Table 2
// reports as OOM.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>

#include "common/error.hpp"

namespace pac::dist {

enum class MemClass : int {
  kWeights = 0,
  kGradients,
  kOptimizer,
  kActivations,
  kCache,
  kComm,
  // Admission reservations: bytes promised to a fine-tuning job by the
  // service dispatcher before the job's own allocations materialize.  The
  // fleet charges a device's ledger here while a job owns the device, so
  // co-tenant admission decisions see the committed headroom, not just
  // what is currently resident.
  kReserved,
  kNumClasses,
};

const char* mem_class_name(MemClass c);

class MemoryLedger {
 public:
  MemoryLedger(int device_id,
               std::uint64_t budget_bytes =
                   std::numeric_limits<std::uint64_t>::max())
      : device_id_(device_id), budget_(budget_bytes) {}

  // Thread-safe; throws DeviceOomError when the new total exceeds budget.
  void allocate(MemClass cls, std::uint64_t bytes);
  void release(MemClass cls, std::uint64_t bytes);

  std::uint64_t current(MemClass cls) const;
  std::uint64_t current_total() const;
  std::uint64_t peak(MemClass cls) const;
  std::uint64_t peak_total() const;
  std::uint64_t budget() const { return budget_; }
  int device_id() const { return device_id_; }

  void reset_peaks();

 private:
  static constexpr int kN = static_cast<int>(MemClass::kNumClasses);

  int device_id_;
  std::uint64_t budget_;
  mutable std::mutex mutex_;
  std::array<std::uint64_t, kN> current_{};
  std::array<std::uint64_t, kN> peak_{};
  std::uint64_t peak_total_ = 0;
};

// RAII allocation.
class ScopedAlloc {
 public:
  ScopedAlloc(MemoryLedger& ledger, MemClass cls, std::uint64_t bytes)
      : ledger_(ledger), cls_(cls), bytes_(bytes) {
    ledger_.allocate(cls_, bytes_);
  }
  ~ScopedAlloc() { ledger_.release(cls_, bytes_); }

  ScopedAlloc(const ScopedAlloc&) = delete;
  ScopedAlloc& operator=(const ScopedAlloc&) = delete;

 private:
  MemoryLedger& ledger_;
  MemClass cls_;
  std::uint64_t bytes_;
};

}  // namespace pac::dist
