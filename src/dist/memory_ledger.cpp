#include "dist/memory_ledger.hpp"

#include <numeric>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace pac::dist {

const char* mem_class_name(MemClass c) {
  switch (c) {
    case MemClass::kWeights: return "weights";
    case MemClass::kGradients: return "gradients";
    case MemClass::kOptimizer: return "optimizer";
    case MemClass::kActivations: return "activations";
    case MemClass::kCache: return "cache";
    case MemClass::kComm: return "comm";
    case MemClass::kReserved: return "reserved";
    case MemClass::kNumClasses: break;
  }
  return "?";
}

void MemoryLedger::allocate(MemClass cls, std::uint64_t bytes) {
  std::lock_guard<std::mutex> ledger_guard(mutex_);
  const int i = static_cast<int>(cls);
  const std::uint64_t total =
      std::accumulate(current_.begin(), current_.end(), std::uint64_t{0});
  if (total + bytes > budget_) {
    throw DeviceOomError(device_id_, total + bytes, budget_);
  }
  current_[i] += bytes;
  peak_[i] = std::max(peak_[i], current_[i]);
  peak_total_ = std::max(peak_total_, total + bytes);
  if (obs::enabled()) {
    obs::CounterRegistry::instance().high_water(
        "mem.high_water.device" + std::to_string(device_id_),
        static_cast<std::int64_t>(peak_total_));
  }
}

void MemoryLedger::release(MemClass cls, std::uint64_t bytes) {
  std::lock_guard<std::mutex> ledger_guard(mutex_);
  const int i = static_cast<int>(cls);
  PAC_CHECK(current_[i] >= bytes, "ledger underflow on device "
                                      << device_id_ << " class "
                                      << mem_class_name(cls));
  current_[i] -= bytes;
}

std::uint64_t MemoryLedger::current(MemClass cls) const {
  std::lock_guard<std::mutex> ledger_guard(mutex_);
  return current_[static_cast<int>(cls)];
}

std::uint64_t MemoryLedger::current_total() const {
  std::lock_guard<std::mutex> ledger_guard(mutex_);
  return std::accumulate(current_.begin(), current_.end(), std::uint64_t{0});
}

std::uint64_t MemoryLedger::peak(MemClass cls) const {
  std::lock_guard<std::mutex> ledger_guard(mutex_);
  return peak_[static_cast<int>(cls)];
}

std::uint64_t MemoryLedger::peak_total() const {
  std::lock_guard<std::mutex> ledger_guard(mutex_);
  return peak_total_;
}

void MemoryLedger::reset_peaks() {
  std::lock_guard<std::mutex> ledger_guard(mutex_);
  peak_ = current_;
  std::uint64_t total =
      std::accumulate(current_.begin(), current_.end(), std::uint64_t{0});
  peak_total_ = total;
}

}  // namespace pac::dist
