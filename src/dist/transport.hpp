// In-process message transport between simulated edge devices.
//
// Cooperative message passing in the MPI style: a send deposits a message in
// the receiver's mailbox keyed by (source, tag); a recv blocks on a
// condition variable until a matching message arrives (CP.42: never wait
// without a predicate).  Per-link byte counters feed the communication
// model; `close()` wakes every blocked receiver with ChannelClosedError so
// one failing device cannot deadlock the cluster.
//
// Failure model (rank-scoped): `close_rank(r)` marks one device dead
// without touching the rest of the world.  Receivers blocked on the dead
// rank wake with PeerDeadError; messages the dead rank already delivered
// remain receivable (drain semantics); links between live ranks are
// unaffected.  `recv_for` adds a timeout so callers can detect silent
// stalls and presume a peer dead (Communicator's retry/backoff path).
//
// Fault injection: an optional FaultPlan makes the transport misbehave on
// purpose — seeded delays, legal reordering, transient send failures, and
// scheduled rank death — for the chaos tests (see dist/fault.hpp).
//
// The optional LinkModel adds a real sleep proportional to message size,
// emulating the paper's 128 Mbps edge LAN for wall-clock demos; tests and
// trainers leave it off and use the analytic simulator for paper-scale
// timing instead.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "dist/fault.hpp"
#include "tensor/tensor.hpp"

namespace pac::dist {

struct LinkModel {
  double bandwidth_bps = 128e6;  // paper testbed: 128 Mbps LAN
  double latency_s = 1e-3;
  bool simulate_delay = false;  // sleep sends to emulate the link in realtime

  double transfer_seconds(std::uint64_t bytes) const {
    return latency_s + static_cast<double>(bytes) * 8.0 / bandwidth_bps;
  }
};

struct Message {
  int source = -1;
  int tag = 0;
  Tensor payload;
};

struct LinkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class Transport {
 public:
  Transport(int world_size, LinkModel link = {}, FaultPlan faults = {});

  int world_size() const { return world_size_; }
  const LinkModel& link() const { return link_; }

  void send(int from, int to, int tag, Tensor payload);
  // Blocks until a message with (from, tag) arrives at `to`.
  Tensor recv(int to, int from, int tag);
  // Bounded wait: nullopt on timeout (still throws on close / dead peer).
  std::optional<Tensor> recv_for(int to, int from, int tag,
                                 std::chrono::milliseconds timeout);

  // Wakes all blocked receivers with ChannelClosedError; subsequent sends
  // and recvs throw too.  Used on whole-cluster teardown.
  void close();
  bool closed() const;

  // Marks one rank dead.  Receivers blocked on it wake with PeerDeadError;
  // already-delivered messages from it stay receivable until drained; all
  // other links keep working.  Idempotent.
  void close_rank(int rank);
  bool rank_dead(int rank) const;

  // Total traffic from `from` to `to` so far.
  LinkStats stats(int from, int to) const;
  std::uint64_t total_bytes() const;

  // The transport's fault injector (chaos tests inspect op counters).
  FaultInjector& fault_injector() { return faults_; }

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable arrived;
    std::map<std::pair<int, int>, std::deque<Message>> queues;
    // Parked messages awaiting deferred (reordered) delivery.
    std::map<std::pair<int, int>, std::deque<Message>> deferred;
  };

  void check_rank(int rank, const char* what) const;
  void maybe_inject_death(int rank);
  // Moves parked messages for `key` (or all keys) into the live queues.
  // Caller must hold box.mutex.
  static void flush_deferred(Mailbox& box,
                             const std::pair<int, int>* key_or_null);
  std::optional<Tensor> recv_impl(
      int to, int from, int tag,
      const std::optional<std::chrono::milliseconds>& timeout);

  int world_size_;
  LinkModel link_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  mutable std::mutex stats_mutex_;
  std::map<std::pair<int, int>, LinkStats> stats_;
  std::atomic<bool> closed_{false};
  std::vector<std::unique_ptr<std::atomic<bool>>> dead_;
  FaultInjector faults_;
};

}  // namespace pac::dist
