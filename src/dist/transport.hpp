// Message transport between edge devices — abstract contract plus the
// in-process reference backend.
//
// Cooperative message passing in the MPI style: a send deposits a message in
// the receiver's mailbox keyed by (source, tag); a recv blocks on a
// condition variable until a matching message arrives (CP.42: never wait
// without a predicate).  Per-link byte counters feed the communication
// model; `close()` wakes every blocked receiver with ChannelClosedError so
// one failing device cannot deadlock the cluster.
//
// Failure model (rank-scoped, identical across backends): `close_rank(r)`
// marks one device dead without touching the rest of the world.  Receivers
// blocked on the dead rank wake with PeerDeadError; messages the dead rank
// already delivered remain receivable (drain semantics); links between live
// ranks are unaffected.  `recv_for` adds a timeout so callers can detect
// silent stalls and presume a peer dead (Communicator's retry/backoff path).
//
// Fault injection: an optional FaultPlan makes the transport misbehave on
// purpose — seeded delays, legal reordering, transient send failures, and
// scheduled rank death — for the chaos tests (see dist/fault.hpp).  Fault
// decisions are pure hashes of (seed, link, tag, per-link sequence), so the
// same plan produces the same schedule on every backend.
//
// Backends:
//   * InProcTransport (this header) — shared-memory-in-one-process mailboxes;
//     the deterministic oracle every other backend must match.
//   * ShmTransport (shm_transport.hpp) — POSIX shared-memory rings between
//     processes on one host.
//   * TcpTransport (tcp_transport.hpp) — length-prefixed frames over TCP
//     sockets for cross-machine ranks.
//
// The optional LinkModel adds a real sleep proportional to message size,
// emulating the paper's 128 Mbps edge LAN for wall-clock demos; tests and
// trainers leave it off and use the analytic simulator for paper-scale
// timing instead.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "dist/fault.hpp"
#include "tensor/quant.hpp"
#include "tensor/tensor.hpp"

namespace pac::dist {

struct LinkModel {
  double bandwidth_bps = 128e6;  // paper testbed: 128 Mbps LAN
  double latency_s = 1e-3;
  bool simulate_delay = false;  // sleep sends to emulate the link in realtime

  double transfer_seconds(std::uint64_t bytes) const {
    return latency_s + static_cast<double>(bytes) * 8.0 / bandwidth_bps;
  }
};

struct Message {
  int source = -1;
  int tag = 0;
  Tensor payload;
  // Compressed payload (fp16/int8): set instead of `payload`, carried
  // verbatim through mailboxes and wire frames so a quantized tensor
  // round-trips bit-identically.  recv() dequantizes at the consumer.
  std::optional<quant::QTensor> q;

  std::uint64_t payload_bytes() const {
    if (q.has_value()) return q->byte_size();
    return payload.defined() ? payload.byte_size() : 0;
  }
};

struct LinkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

// Abstract transport contract.  All backends implement exactly these
// semantics; tests/transport_conformance_test.cpp holds them to it.
class Transport {
 public:
  Transport(int world_size, LinkModel link, FaultPlan faults);
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  int world_size() const { return world_size_; }
  const LinkModel& link() const { return link_; }

  virtual void send(int from, int to, int tag, Tensor payload) = 0;
  // Ships a compressed payload; the link is charged the compressed bytes.
  virtual void send_q(int from, int to, int tag, quant::QTensor payload) = 0;
  // Blocks until a message with (from, tag) arrives at `to`.  A compressed
  // message is dequantized here, at the consumption point.
  Tensor recv(int to, int from, int tag);
  // Bounded wait: nullopt on timeout (still throws on close / dead peer).
  std::optional<Tensor> recv_for(int to, int from, int tag,
                                 std::chrono::milliseconds timeout);
  // Compressed receive: returns the QTensor exactly as sent (a plain fp32
  // send arrives as a bit-exact kF32 repack).
  quant::QTensor recv_q(int to, int from, int tag);
  std::optional<quant::QTensor> recv_q_for(int to, int from, int tag,
                                           std::chrono::milliseconds timeout);

  // Wakes all blocked receivers with ChannelClosedError; subsequent sends
  // and recvs throw too.  Used on whole-cluster teardown.
  virtual void close() = 0;
  virtual bool closed() const = 0;

  // Marks one rank dead.  Receivers blocked on it wake with PeerDeadError;
  // already-delivered messages from it stay receivable until drained; all
  // other links keep working.  Idempotent.
  virtual void close_rank(int rank) = 0;
  virtual bool rank_dead(int rank) const = 0;

  // True while the link to `rank` is known-lost but still inside its
  // reconnect budget (TCP only; other backends never degrade).  The
  // Communicator freezes its death-presumption clock while this holds — a
  // slow reconnect must not be misread as a dead peer.
  virtual bool link_degraded(int rank) const {
    (void)rank;
    return false;
  }

  // Root-cause death bookkeeping.  Cascading failures mark several ranks
  // dead (a survivor that unwinds closes its own links); the *root* death is
  // the one recovery should absorb.  First report wins; -1 when none.
  // Reported by injected deaths, recv-timeout presumption, remote peer-dead
  // detection, and external process supervisors.
  virtual void report_root_death(int rank);
  virtual int first_dead_rank() const { return root_dead_.load(); }

  // Total traffic from `from` to `to` so far (send-side accounting).
  LinkStats stats(int from, int to) const;
  std::uint64_t total_bytes() const;

  // The transport's fault injector (chaos tests inspect op counters).
  FaultInjector& fault_injector() { return faults_; }

 protected:
  void check_rank(int rank, const char* what) const;
  // Records per-link stats and observability counters for a send.
  void record_send(int from, int to, std::uint64_t bytes);
  void record_recv(int from, int to, std::uint64_t bytes);
  // If the fault plan schedules `rank`'s death at this op, closes the rank
  // (via the backend's close_rank) and throws RankDeathError.
  void maybe_inject_death(int rank);
  // Runs the send-side fault pipeline shared by every backend: transient
  // failure, injected delay, modeled link sleep.  Caller has already done
  // closed/dead checks.  Throws TransientSendError as scheduled.
  void run_send_faults(int from, int to, int tag, std::uint64_t bytes);

  virtual std::optional<Message> recv_impl(
      int to, int from, int tag,
      const std::optional<std::chrono::milliseconds>& timeout) = 0;

  int world_size_;
  LinkModel link_;
  FaultInjector faults_;
  mutable std::mutex stats_mutex_;
  std::map<std::pair<int, int>, LinkStats> stats_;
  std::atomic<int> root_dead_{-1};
};

// The original single-process backend: every rank lives in one process and
// shares this object.  Deterministic oracle for the conformance suite.
class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(int world_size, LinkModel link = {},
                           FaultPlan faults = {});

  void send(int from, int to, int tag, Tensor payload) override;
  void send_q(int from, int to, int tag, quant::QTensor payload) override;
  void close() override;
  bool closed() const override;
  void close_rank(int rank) override;
  bool rank_dead(int rank) const override;

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable arrived;
    std::map<std::pair<int, int>, std::deque<Message>> queues;
    // Parked messages awaiting deferred (reordered) delivery.
    std::map<std::pair<int, int>, std::deque<Message>> deferred;
  };

  // Moves parked messages for `key` (or all keys) into the live queues.
  // Caller must hold box.mutex.
  static void flush_deferred(Mailbox& box,
                             const std::pair<int, int>* key_or_null);
  // Shared body of send/send_q: fault pipeline, stats, mailbox deposit.
  void send_message(int from, int to, int tag, Message msg,
                    std::uint64_t bytes);
  std::optional<Message> recv_impl(
      int to, int from, int tag,
      const std::optional<std::chrono::milliseconds>& timeout) override;

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<bool> closed_{false};
  std::vector<std::unique_ptr<std::atomic<bool>>> dead_;
};

}  // namespace pac::dist
