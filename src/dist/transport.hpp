// In-process message transport between simulated edge devices.
//
// Cooperative message passing in the MPI style: a send deposits a message in
// the receiver's mailbox keyed by (source, tag); a recv blocks on a
// condition variable until a matching message arrives (CP.42: never wait
// without a predicate).  Per-link byte counters feed the communication
// model; `close()` wakes every blocked receiver with ChannelClosedError so
// one failing device cannot deadlock the cluster.
//
// The optional LinkModel adds a real sleep proportional to message size,
// emulating the paper's 128 Mbps edge LAN for wall-clock demos; tests and
// trainers leave it off and use the analytic simulator for paper-scale
// timing instead.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace pac::dist {

struct LinkModel {
  double bandwidth_bps = 128e6;  // paper testbed: 128 Mbps LAN
  double latency_s = 1e-3;
  bool simulate_delay = false;  // sleep sends to emulate the link in realtime

  double transfer_seconds(std::uint64_t bytes) const {
    return latency_s + static_cast<double>(bytes) * 8.0 / bandwidth_bps;
  }
};

struct Message {
  int source = -1;
  int tag = 0;
  Tensor payload;
};

struct LinkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class Transport {
 public:
  Transport(int world_size, LinkModel link = {});

  int world_size() const { return world_size_; }
  const LinkModel& link() const { return link_; }

  void send(int from, int to, int tag, Tensor payload);
  // Blocks until a message with (from, tag) arrives at `to`.
  Tensor recv(int to, int from, int tag);

  // Wakes all blocked receivers with ChannelClosedError; subsequent sends
  // and recvs throw too.  Used on device failure.
  void close();
  bool closed() const;

  // Total traffic from `from` to `to` so far.
  LinkStats stats(int from, int to) const;
  std::uint64_t total_bytes() const;

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable arrived;
    std::map<std::pair<int, int>, std::deque<Message>> queues;
  };

  void check_rank(int rank, const char* what) const;

  int world_size_;
  LinkModel link_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  mutable std::mutex stats_mutex_;
  std::map<std::pair<int, int>, LinkStats> stats_;
  std::atomic<bool> closed_{false};
};

}  // namespace pac::dist
