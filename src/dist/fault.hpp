// Seeded, reproducible fault injection for the in-process transport.
//
// A FaultPlan describes *what* can go wrong on the simulated edge LAN:
// per-message delivery delays, deferred delivery (legal reordering — only
// messages with different (source, tag) keys may overtake each other, so
// the per-queue FIFO contract is preserved), transient send failures that
// succeed on retry, and rank death after a scheduled number of transport
// operations.  A FaultInjector turns the plan into per-event decisions.
//
// Determinism: every decision is a pure hash of (seed, link, tag, per-link
// sequence number), and each rank's death trigger counts only that rank's
// own transport operations — so the same plan produces the same faults
// regardless of thread interleaving.  The chaos tests rely on this.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>
#include <utility>
#include <vector>

namespace pac::dist {

struct FaultPlan {
  std::uint64_t seed = 0x5eedF417;

  // Delivery delay: with `delay_probability`, a send sleeps for a uniform
  // duration in [delay_min_ms, delay_max_ms] before depositing.
  double delay_probability = 0.0;
  double delay_min_ms = 0.0;
  double delay_max_ms = 0.0;

  // Deferred delivery: with `reorder_probability`, a message is parked and
  // delivered after a later message to the same mailbox (cross-key
  // overtaking only; same-key sends and receivers flush parked messages
  // first, keeping per-(source, tag) FIFO intact).
  double reorder_probability = 0.0;

  // Transient send failures: with `send_failure_probability`, a send
  // throws TransientSendError up to `max_transient_failures` times before
  // the retried send goes through.
  double send_failure_probability = 0.0;
  int max_transient_failures = 2;

  // Rank death: rank r dies (RankDeathError) when its own transport
  // operation count reaches the mapped value.
  std::map<int, std::uint64_t> death_after_ops;

  // Rank slowdown (straggler injection): rank r's compute is dilated by
  // `throttle_factor` once its own transport operation count reaches the
  // mapped value — the degradation analogue of `death_after_ops`.  The
  // compute loops consult throttle_of() and sleep proportionally, so the
  // throughput ratio seen by the health monitor is ~1/throttle_factor
  // regardless of absolute machine speed.
  std::map<int, std::uint64_t> throttle_after_ops;
  double throttle_factor = 4.0;

  // WAN bandwidth shaping: a per-sender token bucket caps the modeled send
  // rate; a send that outruns the bucket sleeps off its deficit.  Timing
  // only — values and per-link ordering are untouched, so shaped runs stay
  // bit-identical to unshaped ones.
  double shape_bandwidth_bps = 0.0;  // 0 = off
  std::uint64_t shape_burst_bytes = 256 * 1024;

  // Burst loss episodes: counting each directed link's send attempts, every
  // cycle of (loss_burst_period + loss_burst_len) attempts ends with
  // `loss_burst_len` transient failures — a WAN loss *episode* rather than
  // the i.i.d. drops of send_failure_probability.
  std::uint64_t loss_burst_period = 0;  // attempts between episodes; 0 = off
  std::uint64_t loss_burst_len = 0;     // failing attempts per episode

  // Forced link cut: the TCP socket of directed link (from, to) is dropped
  // every N wire frames, exercising the reconnect/resync path.  Interpreted
  // only by TcpTransport; the in-proc and shm backends ignore it, so cut
  // runs can be compared bit-for-bit against the in-proc oracle.
  std::map<std::pair<int, int>, std::uint64_t> tcp_cut_every_frames;

  bool any_faults() const {
    return delay_probability > 0.0 || reorder_probability > 0.0 ||
           send_failure_probability > 0.0 || !death_after_ops.empty() ||
           !throttle_after_ops.empty() || shape_bandwidth_bps > 0.0 ||
           loss_burst_len > 0 || !tcp_cut_every_frames.empty();
  }
};

// Per-transport runtime state for a FaultPlan.  Thread-safe; one instance
// lives inside each Transport.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan, int world_size);

  const FaultPlan& plan() const { return plan_; }
  bool active() const { return plan_.any_faults(); }

  // Decisions for the next message on link (from -> to, tag).  Each send
  // consumes one sequence number per link+tag; failed (transient) attempts
  // reuse the same number so the retried message sees a fresh decision
  // stream position only once it is actually delivered.

  // Milliseconds of injected delay for this message (0 = none).
  double delay_ms(int from, int to, int tag);
  // Whether to defer (reorder) delivery of this message.
  bool defer(int from, int to, int tag);
  // Whether this send attempt fails transiently.  Consecutive failures of
  // the same logical message are capped at plan.max_transient_failures.
  bool send_fails(int from, int to, int tag);
  // Marks the current logical message on the link as delivered (resets the
  // transient-failure attempt counter and advances the sequence).
  void message_delivered(int from, int to, int tag);

  // Counts one transport operation by `rank` (when the plan watches this
  // rank for death or throttle); returns true when the plan schedules this
  // rank's death at (or before) the new count.
  bool op_kills_rank(int rank);

  // Compute dilation factor currently in effect for `rank`: 1.0 until the
  // rank's scheduled throttle trigger fires, plan.throttle_factor after.
  double throttle_of(int rank);

  // Operations counted for `rank` so far (chaos tests use this to place
  // death and throttle schedules inside a specific training phase).
  std::uint64_t ops_of_rank(int rank);

  // Seconds the sender must sleep to fit `bytes` under the token-bucket
  // bandwidth cap (0 when shaping is off or the bucket has room).
  double shape_delay_s(int from, std::uint64_t bytes);

  // True when this send attempt on (from -> to) falls inside a scheduled
  // loss episode (the caller throws TransientSendError).  Every call counts
  // one attempt.
  bool in_loss_burst(int from, int to);

  // True when the wire frame about to go out on TCP link (from -> to) hits
  // a scheduled cut (the transport drops its socket first).  Every call
  // counts one frame.
  bool tcp_cut_due(int from, int to);

 private:
  struct LinkState {
    std::uint64_t seq = 0;       // delivered messages on this link+tag
    int failed_attempts = 0;     // transient failures of the current message
  };

  struct ShapeState {
    bool primed = false;
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last{};
  };

  std::uint64_t event_hash(int from, int to, int tag, std::uint64_t seq,
                           std::uint64_t salt) const;
  double uniform01(std::uint64_t h) const;

  FaultPlan plan_;
  std::mutex mutex_;
  std::map<std::tuple<int, int, int>, LinkState> links_;
  std::vector<std::uint64_t> ops_by_rank_;
  std::map<int, ShapeState> shape_;  // token bucket per sending rank
  std::map<std::pair<int, int>, std::uint64_t> loss_attempts_;
  std::map<std::pair<int, int>, std::uint64_t> cut_frames_;
};

}  // namespace pac::dist
