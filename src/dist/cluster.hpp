// The simulated edge cluster: N devices (threads) with memory ledgers and
// compute-speed scales, wired through a shared Transport.
//
// `run` launches one thread per *live* device executing the same SPMD
// function (MPI-style).  Failure handling is rank-scoped:
//   - RankDeathError (an injected device death) closes only that rank's
//     links; peers blocked on it unwind with PeerDeadError, and run()
//     rethrows the death so callers can re-plan over the survivors.
//   - PeerDeadError on a surviving rank cascades: the survivor leaves the
//     step (closing its own links so ranks blocked on *it* unwind too).
//   - Any other exception — DeviceOomError being the interesting case —
//     closes the whole transport so every peer unwinds with
//     ChannelClosedError, and the first real exception is rethrown.
// Ranks marked dead (mark_dead, or a rethrown death) stay dead across
// subsequent run() calls until revive_all(); recovery paths run reduced
// plans on the surviving ranks of the same cluster.
//
// An optional FaultPlan (set_fault_plan) arms every subsequent run's
// transport with seeded fault injection — the chaos-test harness.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dist/communicator.hpp"
#include "dist/memory_ledger.hpp"
#include "dist/transport.hpp"

namespace pac::dist {

struct DeviceSpec {
  double compute_scale = 1.0;  // relative speed (1.0 = reference Jetson)
  std::uint64_t memory_budget =
      std::numeric_limits<std::uint64_t>::max();  // bytes
};

// Everything a rank's SPMD function can touch.
struct DeviceContext {
  int rank;
  int world_size;
  Communicator& comm;
  MemoryLedger& ledger;
  const DeviceSpec& spec;
};

class EdgeCluster {
 public:
  explicit EdgeCluster(std::vector<DeviceSpec> devices, LinkModel link = {});
  // Homogeneous cluster of `n` reference devices.
  EdgeCluster(int n, std::uint64_t memory_budget_bytes, LinkModel link = {});

  int size() const { return static_cast<int>(devices_.size()); }
  MemoryLedger& ledger(int rank);
  const DeviceSpec& spec(int rank) const;

  // ---- failure bookkeeping ----
  // Permanently (until revive_all) removes a rank from future runs.
  void mark_dead(int rank);
  bool is_dead(int rank) const;
  void revive_all() { dead_.assign(dead_.size(), false); }
  int num_alive() const;
  // Sorted ranks that are still alive.
  std::vector<int> alive_ranks() const;

  // Fault injection for every subsequent run's transport.
  void set_fault_plan(FaultPlan plan) { fault_plan_ = std::move(plan); }
  const FaultPlan& fault_plan() const { return fault_plan_; }
  // Communication policy (recv timeouts / send retries) handed to every
  // rank's Communicator.
  void set_comm_policy(const CommPolicy& policy) { comm_policy_ = policy; }

  // Runs fn on every live rank; blocks until all complete.  Rethrows (in
  // priority order) the first RankDeathError, then any non-peer failure,
  // then the first unexplained PeerDeadError raised by any rank.
  void run(const std::function<void(DeviceContext&)>& fn);

  // Transport of the most recent run (traffic statistics).
  const Transport* last_transport() const { return transport_.get(); }

 private:
  std::vector<DeviceSpec> devices_;
  LinkModel link_;
  std::vector<std::unique_ptr<MemoryLedger>> ledgers_;
  std::unique_ptr<Transport> transport_;
  std::vector<bool> dead_;
  FaultPlan fault_plan_;
  CommPolicy comm_policy_;
};

}  // namespace pac::dist
