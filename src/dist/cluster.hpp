// The simulated edge cluster: N devices (threads) with memory ledgers and
// compute-speed scales, wired through a shared Transport.
//
// `run` launches one thread per device executing the same SPMD function
// (MPI-style).  If any device throws — DeviceOomError being the interesting
// case — the transport is closed so peers blocked on recv unwind with
// ChannelClosedError, and the *first real* exception is rethrown to the
// caller.  This is the failure-injection path the tests exercise.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dist/communicator.hpp"
#include "dist/memory_ledger.hpp"
#include "dist/transport.hpp"

namespace pac::dist {

struct DeviceSpec {
  double compute_scale = 1.0;  // relative speed (1.0 = reference Jetson)
  std::uint64_t memory_budget =
      std::numeric_limits<std::uint64_t>::max();  // bytes
};

// Everything a rank's SPMD function can touch.
struct DeviceContext {
  int rank;
  int world_size;
  Communicator& comm;
  MemoryLedger& ledger;
  const DeviceSpec& spec;
};

class EdgeCluster {
 public:
  explicit EdgeCluster(std::vector<DeviceSpec> devices, LinkModel link = {});
  // Homogeneous cluster of `n` reference devices.
  EdgeCluster(int n, std::uint64_t memory_budget_bytes, LinkModel link = {});

  int size() const { return static_cast<int>(devices_.size()); }
  MemoryLedger& ledger(int rank);
  const DeviceSpec& spec(int rank) const;

  // Runs fn on every rank; blocks until all complete.  Rethrows the first
  // non-ChannelClosed exception raised by any rank.
  void run(const std::function<void(DeviceContext&)>& fn);

  // Transport of the most recent run (traffic statistics).
  const Transport* last_transport() const { return transport_.get(); }

 private:
  std::vector<DeviceSpec> devices_;
  LinkModel link_;
  std::vector<std::unique_ptr<MemoryLedger>> ledgers_;
  std::unique_ptr<Transport> transport_;
};

}  // namespace pac::dist
