// The simulated edge cluster: N devices (threads) with memory ledgers and
// compute-speed scales, wired through a shared Transport.
//
// `run` launches one thread per *live* device executing the same SPMD
// function (MPI-style).  Failure handling is rank-scoped:
//   - RankDeathError (an injected device death) closes only that rank's
//     links; peers blocked on it unwind with PeerDeadError, and run()
//     rethrows the death so callers can re-plan over the survivors.
//   - PeerDeadError on a surviving rank cascades: the survivor leaves the
//     step (closing its own links so ranks blocked on *it* unwind too).
//   - Any other exception — DeviceOomError being the interesting case —
//     closes the whole transport so every peer unwinds with
//     ChannelClosedError, and the first real exception is rethrown.
// Ranks marked dead (mark_dead, or a rethrown death) stay dead across
// subsequent run() calls until revive_all(); recovery paths run reduced
// plans on the surviving ranks of the same cluster.
//
// An optional FaultPlan (set_fault_plan) arms every subsequent run's
// transport with seeded fault injection — the chaos-test harness.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dist/communicator.hpp"
#include "dist/memory_ledger.hpp"
#include "dist/transport.hpp"

namespace pac::dist {

struct DeviceSpec {
  double compute_scale = 1.0;  // relative speed (1.0 = reference Jetson)
  std::uint64_t memory_budget =
      std::numeric_limits<std::uint64_t>::max();  // bytes
};

// Everything a rank's SPMD function can touch.
struct DeviceContext {
  int rank;
  int world_size;
  Communicator& comm;
  MemoryLedger& ledger;
  const DeviceSpec& spec;
};

// Builds the Transport for one rank of a run.  In multi-process mode each
// process hosts a subset of ranks and every hosted rank gets its own
// endpoint; the factory is called once per local live rank per run.
using TransportFactory = std::function<std::unique_ptr<Transport>(
    int world_size, int rank, const LinkModel& link, const FaultPlan& faults)>;

class EdgeCluster {
 public:
  explicit EdgeCluster(std::vector<DeviceSpec> devices, LinkModel link = {});
  // Homogeneous cluster of `n` reference devices.
  EdgeCluster(int n, std::uint64_t memory_budget_bytes, LinkModel link = {});

  int size() const { return static_cast<int>(devices_.size()); }
  MemoryLedger& ledger(int rank);
  const DeviceSpec& spec(int rank) const;

  // ---- failure bookkeeping ----
  // Permanently (until revive_all) removes a rank from future runs.
  void mark_dead(int rank);
  bool is_dead(int rank) const;
  void revive_all() { dead_.assign(dead_.size(), false); }
  int num_alive() const;
  // Sorted ranks that are still alive.
  std::vector<int> alive_ranks() const;

  // Fault injection for every subsequent run's transport.
  void set_fault_plan(FaultPlan plan) { fault_plan_ = std::move(plan); }
  const FaultPlan& fault_plan() const { return fault_plan_; }
  // Communication policy (recv timeouts / send retries) handed to every
  // rank's Communicator.
  void set_comm_policy(const CommPolicy& policy) { comm_policy_ = policy; }

  // ---- multi-process mode ----
  // With a factory, each run builds one Transport endpoint per local live
  // rank instead of one shared InProcTransport for the whole world.
  void set_transport_factory(TransportFactory factory) {
    factory_ = std::move(factory);
  }
  // Restricts run() to hosting only these ranks (this process's share of
  // the world).  Default: all ranks are local (single-process mode).
  void set_local_ranks(std::vector<int> ranks);
  bool rank_is_local(int rank) const;
  bool all_ranks_local() const { return local_ranks_.empty(); }

  // Runs fn on every live *local* rank; blocks until all complete.
  // Rethrows (in priority order) the first RankDeathError, then any
  // non-peer failure, then a PeerDeadError for the root-cause dead rank.
  void run(const std::function<void(DeviceContext&)>& fn);

  // Transport of the most recent run (traffic statistics).  In factory
  // mode this is the lowest local rank's endpoint.
  const Transport* last_transport() const {
    return transports_.empty() ? nullptr : transports_.front().get();
  }
  // Send-side traffic across all of this process's endpoints for the most
  // recent run.
  std::uint64_t last_run_total_bytes() const;

 private:
  Transport* transport_for(int rank);

  std::vector<DeviceSpec> devices_;
  LinkModel link_;
  std::vector<std::unique_ptr<MemoryLedger>> ledgers_;
  std::vector<std::unique_ptr<Transport>> transports_;
  std::vector<int> transport_rank_;  // rank served; -1 = whole world
  std::vector<bool> dead_;
  std::vector<int> local_ranks_;  // empty = all local
  TransportFactory factory_;
  FaultPlan fault_plan_;
  CommPolicy comm_policy_;
};

}  // namespace pac::dist
