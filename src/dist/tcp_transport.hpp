// TCP socket transport backend: ranks on (potentially) different machines
// exchange length-prefixed wire frames over stream sockets.
//
// Connection model: every endpoint owns a listening socket; links are
// established lazily by the sender and identified by a HELLO frame carrying
// the source rank, so each directed link is one connection and per-(source,
// tag) FIFO follows from TCP's byte ordering plus the per-destination send
// serialization in RemoteEndpointBase.  `close_rank` / `close` propagate as
// RANK_DEAD / CLOSE control frames (best effort); an unexpected EOF or
// connection reset from a peer marks it dead — the wire itself is the
// failure detector, complementing the Communicator's recv-timeout
// presumption.
//
// Rendezvous: construct with the world's peer list.  Ports may be 0 at
// construction (kernel-assigned); read the actual one back with `port()`
// and distribute it out of band (the multi-process driver uses a rendezvous
// directory, tests just build all endpoints first and then connect them via
// `set_peer`).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/remote_endpoint.hpp"

namespace pac::dist {

struct TcpPeer {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = unknown yet
};

class TcpTransport final : public RemoteEndpointBase {
 public:
  // Binds `bind_port` (0 for kernel-assigned) on 127.0.0.1 and starts
  // accepting.  Peer addresses can be provided now or later via set_peer.
  TcpTransport(int world_size, int rank, std::uint16_t bind_port = 0,
               LinkModel link = {}, FaultPlan faults = {});
  ~TcpTransport() override;

  // The port this endpoint actually listens on.
  std::uint16_t port() const { return port_; }
  void set_peer(int rank, TcpPeer peer);

  // First report wins locally, then gossips a ROOT_DEAD control frame so
  // every endpoint converges on the same root-cause record (the shm
  // backend shares it through the arena header; TCP has no shared memory).
  void report_root_death(int rank) override;

 protected:
  void wire_send(int to, const std::vector<std::uint8_t>& frame) override;
  void on_close_rank(int rank) override;
  void on_close() override;

 private:
  struct Connection {
    int fd = -1;
    std::atomic<int> peer{-1};  // set once the HELLO frame arrives
    std::thread rx;
  };

  void accept_main();
  void rx_main(Connection* conn);
  int connect_to(int to);  // returns connected fd with HELLO sent, or -1
  // Best-effort control broadcast.  `skip_rank` is excluded — callers that
  // already hold that link's io mutex (a failed wire_send reporting the
  // peer dead) must not re-lock it.
  void send_control_everywhere(const std::vector<std::uint8_t>& frame,
                               int skip_rank = -1);
  // Marks `rank` dead; sets drained immediately when no inbound link from
  // it exists (nothing can be in flight).
  void note_dead_rank(int rank);
  // EOF / reset handling: an unexpected hangup marks the peer dead.
  void observe_peer_gone(int peer);

  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::thread acceptor_;

  std::mutex peers_mutex_;
  std::vector<TcpPeer> peers_;
  // Outbound fd per destination; both guarded by the matching io_mutex_
  // entry, which serializes every write (data and control) on that link.
  std::vector<int> out_fd_;
  std::vector<std::unique_ptr<std::mutex>> io_mutex_;

  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Connection>> conns_;
};

}  // namespace pac::dist
