// TCP socket transport backend: ranks on (potentially) different machines
// exchange length-prefixed wire frames over stream sockets.
//
// Connection model: every endpoint owns a listening socket; links are
// established lazily by the sender and identified by a HELLO frame carrying
// the source rank, so each directed link is one connection and per-(source,
// tag) FIFO follows from TCP's byte ordering plus the per-destination send
// serialization in RemoteEndpointBase.  `close_rank` / `close` propagate as
// RANK_DEAD / CLOSE control frames (best effort).
//
// Link loss vs rank death (the reconnect state machine, DESIGN.md §5h):
// with a nonzero reconnect budget an unexpected EOF / connection reset
// marks the link DEGRADED, not the peer dead.  The sender keeps every
// un-acknowledged frame in a bounded retransmit buffer; on the next send it
// re-dials with seeded exponential backoff + jitter, re-HELLOs with a fresh
// per-link session *epoch*, and the receiver replies with the count of
// logical frames it has delivered from that link — the sender replays
// exactly the suffix the receiver never saw, so no frame is lost or
// duplicated and per-(source, tag) FIFO survives the reconnect.  Stale
// connections (an older epoch still draining) stop delivering the moment a
// newer epoch is adopted.  Only after the budget is exhausted — or a
// RANK_DEAD / ROOT_DEAD control frame arrives — does the link collapse into
// the ordinary PeerDeadError / recovery path.  Budget 0 restores the legacy
// behavior where the wire itself is the failure detector (EOF = death).
//
// Frame authentication: with an AuthKey configured every outbound frame is
// MAC-tagged (SipHash-2-4 over header+body, see wire.hpp) and every inbound
// decoder requires a valid tag — a tampered or unauthenticated frame
// poisons that connection's decoder and never reaches a mailbox.
//
// Rendezvous: construct with the world's peer list, or install a peer
// resolver that maps rank -> address on demand (the rendezvous client in
// dist/rendezvous.hpp).  Ports may be 0 at construction (kernel-assigned);
// read the actual one back with `port()`.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dist/remote_endpoint.hpp"

namespace pac::dist {

struct TcpPeer {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = unknown yet
};

// Survivability knobs for a TCP endpoint.  The defaults give every link a
// small reconnect budget; set reconnect_budget = 0 for the legacy
// EOF-means-death wire.
struct TcpTuning {
  // Reconnect attempts per link loss before the link collapses into the
  // rank-death path.  0 disables reconnection entirely.
  int reconnect_budget = 4;
  // Exponential backoff between attempts: base * 2^attempt, capped, then
  // scaled by backoff_jitter(seed, peer, attempt) in [0.5, 1.5).
  double backoff_base_ms = 5.0;
  double backoff_max_ms = 200.0;
  std::uint64_t backoff_seed = 0xF1A5EEDULL;
  // Dial deadline for the FIRST connection on a link (the peer may still
  // be binding its listener).
  int connect_timeout_ms = 5000;
  // Per-attempt deadline for a reconnect dial + resync reply.
  int reconnect_timeout_ms = 500;
  // Sender-side in-flight bound: frames kept for retransmission until the
  // receiver acknowledges them.  A full buffer blocks the sender on acks.
  std::size_t retransmit_buffer_frames = 256;
  // The receiver acks its cumulative delivery count every N logical frames.
  std::uint32_t ack_interval = 8;
  // Frame-auth key; all frames on all links of this endpoint are tagged
  // and verified when set (distributed out of band or via rendezvous).
  std::optional<wire::AuthKey> auth_key;
};

class TcpTransport final : public RemoteEndpointBase {
 public:
  // Binds `bind_port` (0 for kernel-assigned) on 127.0.0.1 and starts
  // accepting.  Peer addresses can be provided now or later via set_peer.
  TcpTransport(int world_size, int rank, std::uint16_t bind_port = 0,
               LinkModel link = {}, FaultPlan faults = {},
               TcpTuning tuning = {});
  ~TcpTransport() override;

  // The port this endpoint actually listens on.
  std::uint16_t port() const { return port_; }
  void set_peer(int rank, TcpPeer peer);
  // Lazy address resolution: consulted (with retry, under the dial
  // deadline) whenever a link must be established and no address is known.
  // The rendezvous factory installs a client lookup here.
  using PeerResolver = std::function<std::optional<TcpPeer>(int rank)>;
  void set_peer_resolver(PeerResolver resolver);

  const TcpTuning& tuning() const { return tuning_; }

  // True while the link to `rank` is lost but within its reconnect budget.
  bool link_degraded(int rank) const override;

  // First report wins locally, then gossips a ROOT_DEAD control frame so
  // every endpoint converges on the same root-cause record (the shm
  // backend shares it through the arena header; TCP has no shared memory).
  void report_root_death(int rank) override;

 protected:
  void wire_send(int to, const std::vector<std::uint8_t>& frame) override;
  void on_close_rank(int rank) override;
  void on_close() override;

 private:
  struct Connection {
    int fd = -1;
    std::atomic<int> peer{-1};  // set once the HELLO frame arrives
    std::uint32_t epoch = 0;    // session epoch adopted for this connection
    std::atomic<bool> done{false};  // rx thread has exited
    std::thread rx;
  };

  // Sender-side per-destination state, guarded by the matching io_mutex_.
  struct OutLink {
    int fd = -1;
    bool ever_connected = false;
    std::uint32_t epoch = 0;   // last session epoch announced to the peer
    std::uint64_t tx_seq = 0;  // logical frames appended to the stream
    std::uint64_t acked = 0;   // receiver-confirmed cumulative deliveries
    // (seq, frame bytes) awaiting acknowledgement, oldest first.
    std::deque<std::pair<std::uint64_t, std::vector<std::uint8_t>>> unacked;
    wire::FrameDecoder acks{0};  // parses ack frames read back from fd
  };

  // Receiver-side per-source state, guarded by rx_mutex_.
  struct RxState {
    std::uint64_t delivered = 0;  // logical frames deposited from this src
    std::uint32_t epoch = 0;      // newest adopted session epoch
    Connection* live = nullptr;   // the connection allowed to deliver
  };

  bool reconnect_enabled() const { return tuning_.reconnect_budget > 0; }
  wire::FrameDecoder make_decoder() const;

  void accept_main();
  void rx_main(Connection* conn);
  void rx_loop(Connection* conn);
  // Adopt `conn` as the live connection for `src` (epoch 0 = initial
  // connection, >0 = resync).  Returns the delivered count snapshot, or
  // nullopt when the connection is stale and must be dropped.
  std::optional<std::uint64_t> adopt_connection(Connection* conn, int src,
                                                std::uint32_t epoch);
  // Count + dispatch one logical frame from the live connection; false when
  // the connection went stale (caller exits its rx loop).
  bool deliver_logical(Connection* conn, int src, wire::Frame frame);
  // Push a cumulative-delivery ack / resync reply back to the sender
  // (best effort; the socket is non-blocking).
  void send_ack(Connection* conn, std::uint64_t delivered);

  // Raw dial (no HELLO): resolves the peer address (via resolver when
  // unknown) and connects within `deadline_ms`.  -1 on failure.
  int dial(int to, int deadline_ms);
  // First connection on a link: dial + HELLO.  Throws TransportError when
  // no route exists (legacy contract).
  void establish_fresh_locked(OutLink& l, int to);
  // Reconnect + resync + replay.  False once the budget is exhausted.
  bool reconnect_locked(OutLink& l, int to);
  std::optional<std::uint64_t> await_resync_reply(int fd, int to,
                                                  std::uint32_t epoch);
  // Opportunistically consume acks the receiver pushed back on this link.
  void drain_acks_locked(OutLink& l, int to);
  bool wait_buffer_space_locked(OutLink& l, int to, bool allow_reconnect);
  // Buffer + transmit one logical frame (everything in the per-link
  // stream: data AND control).  False = the link is lost for good.
  bool send_logical_locked(OutLink& l, int to, std::vector<std::uint8_t> bytes,
                           bool allow_reconnect);

  // Best-effort control broadcast.  `skip_rank` is excluded — callers that
  // already hold that link's io mutex (a failed wire_send reporting the
  // peer dead) must not re-lock it.
  void send_control_everywhere(const std::vector<std::uint8_t>& frame,
                               int skip_rank = -1);
  // Marks `rank` dead; sets drained immediately when no inbound link from
  // it exists (nothing can be in flight).
  void note_dead_rank(int rank);
  // Sets drained(rank) once no live rx thread for it remains.
  void maybe_set_drained(int rank);
  // Collapse: an unexpected hangup (or exhausted budget) marks the peer
  // dead.
  void observe_peer_gone(int peer);
  // EOF on an inbound connection: degraded under a reconnect budget,
  // legacy death otherwise.
  void observe_link_eof(Connection* conn);

  TcpTuning tuning_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::thread acceptor_;

  std::mutex peers_mutex_;
  std::vector<TcpPeer> peers_;
  PeerResolver resolver_;
  // Outbound link state per destination, guarded by the matching io_mutex_
  // entry, which serializes every write (data and control) on that link.
  std::vector<std::unique_ptr<OutLink>> out_;
  std::vector<std::unique_ptr<std::mutex>> io_mutex_;

  std::mutex rx_mutex_;
  std::vector<RxState> rx_;
  std::vector<std::unique_ptr<std::atomic<bool>>> degraded_;

  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Connection>> conns_;
};

}  // namespace pac::dist
