// Rank-scoped communication handle with group collectives.
//
// Collectives operate over an explicit, sorted group of ranks (PAC's hybrid
// parallelism synchronizes adapters *within a stage's device group*, not
// across the world).  Two AllReduce algorithms are provided — ring
// (bandwidth-optimal, the default) and naive gather+broadcast — as the
// ablation pair for the micro benches.
//
// Tag discipline: a collective call consumes its `tag` for every internal
// message; callers must not run two collectives with the same tag
// concurrently on overlapping groups.  The trainers carve disjoint tag
// ranges per purpose (see pipeline/tags.hpp).
#pragma once

#include <vector>

#include "dist/transport.hpp"

namespace pac::dist {

enum class AllReduceAlgo { kRing, kNaive };

// Failure-detection / retry knobs for a rank's communication handle.
struct CommPolicy {
  // recv: 0 disables timeouts (block until message, close, or peer death).
  // With a timeout, each recv waits recv_timeout_ms, then retries with
  // exponential backoff (doubling per attempt) up to max_recv_retries
  // waits before presuming the peer dead (PeerDeadError).
  double recv_timeout_ms = 0.0;
  int max_recv_retries = 4;
  // send: transient failures (TransientSendError) are retried with linear
  // backoff up to max_send_retries attempts, then rethrown.
  int max_send_retries = 8;
  double send_backoff_ms = 0.05;
};

class Communicator {
 public:
  Communicator(Transport& transport, int rank)
      : transport_(&transport), rank_(rank) {}

  int rank() const { return rank_; }
  int world_size() const { return transport_->world_size(); }

  void set_policy(const CommPolicy& policy) { policy_ = policy; }
  const CommPolicy& policy() const { return policy_; }

  // Retries transient link failures with backoff before giving up.
  void send(int to, int tag, Tensor payload);
  // Blocks for a matching message; with a recv timeout configured, retries
  // with backoff and presumes the peer dead once the budget is exhausted.
  Tensor recv(int from, int tag);

  // All collectives require `group` sorted, unique, containing rank().
  void barrier(const std::vector<int>& group, int tag);
  // Returns the root's tensor on every rank (root passes its payload).
  Tensor broadcast(Tensor payload, int root, const std::vector<int>& group,
                   int tag);
  // In-place sum across the group.
  void allreduce_sum(Tensor& t, const std::vector<int>& group, int tag,
                     AllReduceAlgo algo = AllReduceAlgo::kRing);
  // Returns every rank's tensor, in group order.
  std::vector<Tensor> allgather(const Tensor& t, const std::vector<int>& group,
                                int tag);

 private:
  int group_index(const std::vector<int>& group) const;
  void allreduce_ring(Tensor& t, const std::vector<int>& group, int tag);
  void allreduce_naive(Tensor& t, const std::vector<int>& group, int tag);

  Transport* transport_;
  int rank_;
  CommPolicy policy_;
};

}  // namespace pac::dist
