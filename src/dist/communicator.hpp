// Rank-scoped communication handle with group collectives and an async
// point-to-point engine.
//
// Collectives operate over an explicit, sorted group of ranks (PAC's hybrid
// parallelism synchronizes adapters *within a stage's device group*, not
// across the world).  Two AllReduce algorithms are provided — ring
// (bandwidth-optimal, the default) and naive gather+broadcast — as the
// ablation pair for the micro benches.
//
// Async engine: `isend` enqueues a message on a background sender thread
// (started lazily, one per Communicator — modelling the device's single
// uplink) that absorbs link-delay sleeps and transient-failure retries off
// the caller's critical path.  The queue is FIFO, so per-link message
// order is exactly the posting order — a strictly stronger guarantee than
// the transport's per-(source, tag) FIFO contract.  `irecv` returns a
// PendingRecv future; because the transport mailbox buffers arrivals, a
// posted irecv needs no background thread — `wait()` performs the policy
// recv (timeouts, PeerDeadError presumption) at the consumption point,
// which keeps failure unwinding at a well-defined place in the schedule.
//
// Failures observed by the sender thread (exhausted transient retries,
// PeerDeadError, an injected RankDeathError) are deferred: the first one
// is rethrown from the next isend/send/recv/flush_sends call on the main
// thread, and EdgeCluster::run additionally consults deferred_death_rank()
// so an injected death never goes unreported.
//
// Tag discipline: a collective call consumes its `tag` for every internal
// message; callers must not run two collectives with the same tag
// concurrently on overlapping groups.  The trainers carve disjoint tag
// ranges per purpose (see pipeline/tags.hpp).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "dist/transport.hpp"

namespace pac::dist {

enum class AllReduceAlgo { kRing, kNaive };

// Failure-detection / retry knobs for a rank's communication handle.
struct CommPolicy {
  // recv: 0 disables timeouts (block until message, close, or peer death).
  // With a timeout, each recv waits recv_timeout_ms, then retries with
  // exponential backoff (doubling per attempt) up to max_recv_retries
  // waits before presuming the peer dead (PeerDeadError).
  double recv_timeout_ms = 0.0;
  int max_recv_retries = 4;
  // send: transient failures (TransientSendError) are retried with linear
  // backoff up to max_send_retries attempts, then rethrown.
  int max_send_retries = 8;
  double send_backoff_ms = 0.05;
  // Seed for the multiplicative backoff jitter.  Pure doubling/linear
  // backoff synchronizes retry bursts when several ranks hit the same
  // transient-failure window; each wait is instead scaled by a factor in
  // [0.5, 1.5) that is a deterministic function of (seed, rank, attempt),
  // so per-rank schedules diverge but stay reproducible.  0 disables.
  std::uint64_t backoff_jitter_seed = 0xBAC0FF5EEDULL;
  // A recv timeout that expires while the transport reports the link
  // *degraded* (mid-reconnect) does not consume a retry attempt: link loss
  // under an active reconnect budget is not evidence of a dead peer.  The
  // cap bounds how many frozen windows a wedged reconnect can buy before
  // the normal presumption clock resumes.
  int max_degraded_windows = 64;
};

// The jittered backoff multiplier in [0.5, 1.5): a SplitMix64-style hash
// of (seed, rank, attempt).  Exposed for tests; returns 1.0 when seed = 0.
double backoff_jitter(std::uint64_t seed, int rank, int attempt);

class Communicator;

// Handle for a posted receive.  `wait()` blocks for the message (applying
// the communicator's recv policy) and is idempotent; transport errors
// (ChannelClosedError, PeerDeadError) surface from wait(), never from the
// post.  Movable, single-consumer.
class PendingRecv {
 public:
  PendingRecv() = default;

  bool valid() const { return comm_ != nullptr; }
  int source() const { return from_; }
  int tag() const { return tag_; }

  // Blocks until the message arrives (or a failure unwinds the link).
  Tensor wait();

 private:
  friend class Communicator;
  PendingRecv(Communicator* comm, int from, int tag)
      : comm_(comm), from_(from), tag_(tag) {}

  Communicator* comm_ = nullptr;
  int from_ = -1;
  int tag_ = 0;
  bool done_ = false;
  Tensor value_;
};

class Communicator {
 public:
  Communicator(Transport& transport, int rank)
      : transport_(&transport), rank_(rank) {}
  ~Communicator();

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  int rank() const { return rank_; }
  int world_size() const { return transport_->world_size(); }

  void set_policy(const CommPolicy& policy) { policy_ = policy; }
  const CommPolicy& policy() const { return policy_; }

  // Retries transient link failures with backoff before giving up.  Waits
  // for queued isends on the same (to, tag) key first so a blocking send
  // can never overtake the async queue on its own link.
  void send(int to, int tag, Tensor payload);
  // Blocks for a matching message; with a recv timeout configured, retries
  // with backoff and presumes the peer dead once the budget is exhausted.
  Tensor recv(int from, int tag);

  // Compressed point-to-point (cache redistribution, prefetch): identical
  // retry/backoff/FIFO semantics, but the payload ships and is charged at
  // its compressed size.  recv_q of a plain fp32 send returns a bit-exact
  // kF32 repack; recv of a compressed send dequantizes.
  void send_q(int to, int tag, quant::QTensor payload);
  quant::QTensor recv_q(int from, int tag);

  // ---- async engine ----
  // Enqueues the message on the background sender thread and returns
  // immediately.  Messages to the same destination are delivered in
  // posting order; a deferred sender failure is rethrown here (and from
  // every other comm entry point) on the next call.
  void isend(int to, int tag, Tensor payload);
  // Posts a receive for (from, tag); the returned future's wait() performs
  // the actual (policy) recv.
  PendingRecv irecv(int from, int tag);
  // Blocks until every queued isend has been handed to the transport;
  // rethrows the first deferred sender failure.
  void flush_sends();
  // Queued + in-flight isends not yet delivered.
  std::size_t pending_sends() const;
  // Drops queued (not yet in-flight) isends without delivering them.  Used
  // by recovery paths that abandon an in-flight step.
  void abandon_sends();
  // Rank the async sender saw die via an injected RankDeathError, if any.
  // EdgeCluster::run uses this to report deaths the main thread unwound
  // past (e.g. it hit a PeerDeadError first).
  std::optional<int> deferred_death_rank() const;
  // Marks this rank's own links dead on the transport so peers (and our
  // own helper threads blocked in collectives) unwind with PeerDeadError.
  // Called by recovery paths that abandon a step mid-flight.
  void shutdown_links();

  // Compute dilation currently injected for this rank by the transport's
  // fault plan (1.0 = none).  The pipeline's compute loops consult this to
  // apply a scheduled slowdown (see FaultPlan::throttle_after_ops).
  double compute_throttle() const;

  // All collectives require `group` sorted, unique, containing rank().
  void barrier(const std::vector<int>& group, int tag);
  // Returns the root's tensor on every rank (root passes its payload).
  Tensor broadcast(Tensor payload, int root, const std::vector<int>& group,
                   int tag);
  // In-place sum across the group.
  void allreduce_sum(Tensor& t, const std::vector<int>& group, int tag,
                     AllReduceAlgo algo = AllReduceAlgo::kRing);
  // Returns every rank's tensor, in group order.
  std::vector<Tensor> allgather(const Tensor& t, const std::vector<int>& group,
                                int tag);

 private:
  struct QueuedSend {
    int to;
    int tag;
    Tensor payload;
  };

  int group_index(const std::vector<int>& group) const;
  void allreduce_ring(Tensor& t, const std::vector<int>& group, int tag);
  void allreduce_naive(Tensor& t, const std::vector<int>& group, int tag);

  // The synchronous retry/backoff send (shared by send and the sender
  // thread).
  void send_with_retry(int to, int tag, Tensor payload);
  void sender_main();
  void rethrow_deferred_error() const;
  bool has_pending_locked(int to, int tag) const;

  Transport* transport_;
  int rank_;
  CommPolicy policy_;

  // ---- async sender state (guarded by async_mutex_) ----
  mutable std::mutex async_mutex_;
  std::condition_variable async_cv_;    // wakes the sender thread
  std::condition_variable drained_cv_;  // wakes flushers / blocked senders
  std::deque<QueuedSend> queue_;
  std::optional<std::pair<int, int>> inflight_key_;  // (to, tag) being sent
  std::exception_ptr deferred_error_;
  int death_rank_ = -1;
  bool sender_running_ = false;
  bool stop_ = false;
  std::thread sender_;
};

}  // namespace pac::dist
