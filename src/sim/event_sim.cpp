#include "sim/event_sim.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "planner/planner.hpp"

namespace pac::sim {
namespace {

struct RankState {
  int rank = -1;
  int stage = -1;
  std::vector<pipeline::PipeOp> ops;
  std::vector<std::int64_t> micro_of_op;  // global micro id per op
  std::size_t next_op = 0;
  double clock = 0.0;  // device busy-until time
  double busy = 0.0;   // accumulated compute time
};

}  // namespace

SimResult simulate_minibatch(const SimConfig& config) {
  const planner::PlannerInput& input = config.input;
  const pipeline::ParallelPlan& plan = config.plan;
  plan.validate(input.num_blocks(), input.num_devices);

  SimResult result;
  const std::int64_t s = plan.num_stages();
  const std::int64_t M = plan.num_micro_batches;

  // ---- per-stage aggregate costs ----
  struct StageCost {
    double t_fwd = 0.0;
    double t_bwd = 0.0;
    std::uint64_t fwd_msg = 0;
    std::uint64_t bwd_msg = 0;
    std::uint64_t trainable = 0;
  };
  std::vector<StageCost> stage_costs(static_cast<std::size_t>(s));
  for (std::int64_t i = 0; i < s; ++i) {
    const auto& st = plan.stages[static_cast<std::size_t>(i)];
    StageCost& sc = stage_costs[static_cast<std::size_t>(i)];
    for (std::int64_t b = st.block_begin; b < st.block_end; ++b) {
      const auto& blk = input.blocks[static_cast<std::size_t>(b)];
      sc.t_fwd += blk.t_fwd;
      sc.t_bwd += blk.t_bwd;
      sc.trainable += blk.trainable_bytes;
    }
    const auto& boundary =
        input.blocks[static_cast<std::size_t>(st.block_end - 1)];
    sc.fwd_msg = boundary.fwd_msg_bytes;
    sc.bwd_msg = boundary.bwd_msg_bytes;
  }

  // ---- memory feasibility (planner's model, exact stage indices) ----
  {
    planner::PlanEstimate est = planner::evaluate_plan(input, plan);
    result.peak_memory_per_device.assign(
        static_cast<std::size_t>(input.num_devices), 0);
    for (std::int64_t i = 0; i < s; ++i) {
      for (int r : plan.stages[static_cast<std::size_t>(i)].devices) {
        result.peak_memory_per_device[static_cast<std::size_t>(r)] =
            est.stage_memory_bytes[static_cast<std::size_t>(i)];
      }
    }
    if (!est.feasible) {
      result.oom = true;
      result.oom_reason = est.note;
      // Identify the first offending stage's first device.
      for (std::int64_t i = 0; i < s; ++i) {
        if (est.stage_memory_bytes[static_cast<std::size_t>(i)] >
            input.device_budget_bytes) {
          result.oom_device =
              plan.stages[static_cast<std::size_t>(i)].devices.front();
          break;
        }
      }
      return result;
    }
  }

  // ---- build per-rank op lists (same routing as StageWorker) ----
  std::vector<std::int64_t> group_sizes;
  for (const auto& st : plan.stages) {
    group_sizes.push_back(static_cast<std::int64_t>(st.devices.size()));
  }
  std::vector<RankState> ranks;
  std::map<int, std::size_t> rank_index;
  std::vector<std::vector<int>> stage_owners;
  for (std::int64_t i = 0; i < s; ++i) {
    stage_owners.push_back(pipeline::micro_owner_indices(
        plan.stages[static_cast<std::size_t>(i)], M));
  }
  for (std::int64_t i = 0; i < s; ++i) {
    const auto& st = plan.stages[static_cast<std::size_t>(i)];
    const auto gs = static_cast<std::int64_t>(st.devices.size());
    std::int64_t warmup = pipeline::hybrid_warmup(group_sizes, i);
    if (plan.weighted()) {
      warmup = 0;
      for (std::size_t q = static_cast<std::size_t>(i) + 1;
           q < group_sizes.size(); ++q) {
        warmup += group_sizes[q];
      }
    }
    for (std::int64_t gi = 0; gi < gs; ++gi) {
      RankState rs;
      rs.rank = st.devices[static_cast<std::size_t>(gi)];
      rs.stage = static_cast<int>(i);
      std::vector<std::int64_t> local;
      for (std::int64_t m = 0; m < M; ++m) {
        if (stage_owners[static_cast<std::size_t>(i)]
                        [static_cast<std::size_t>(m)] == gi) {
          local.push_back(m);
        }
      }
      rs.ops = pipeline::make_schedule(
          config.schedule, static_cast<std::int64_t>(local.size()), i, s,
          warmup);
      for (const auto& op : rs.ops) {
        rs.micro_of_op.push_back(local[static_cast<std::size_t>(op.micro)]);
      }
      rank_index[rs.rank] = ranks.size();
      ranks.push_back(std::move(rs));
    }
  }

  auto owner = [&](std::int64_t stage, std::int64_t micro) {
    const auto& st = plan.stages[static_cast<std::size_t>(stage)];
    return st.devices[static_cast<std::size_t>(
        stage_owners[static_cast<std::size_t>(stage)]
                    [static_cast<std::size_t>(micro)])];
  };

  // Message availability times keyed by (stage, micro, is_backward).
  std::map<std::tuple<std::int64_t, std::int64_t, bool>, double> msg_ready;
  // Per-directed-link busy-until times (serial links).
  std::map<std::pair<int, int>, double> link_free;

  auto send_message = [&](int from, int to, double ready, double bytes,
                          std::int64_t stage, std::int64_t micro,
                          bool backward) {
    double arrival = ready;
    if (from != to && bytes > 0) {
      double& lf = link_free[{from, to}];
      const double start = std::max(lf, ready);
      const double dur = input.network.transfer_seconds(
          static_cast<std::uint64_t>(bytes));
      lf = start + dur;
      arrival = lf;
      result.comm_bytes += static_cast<std::uint64_t>(bytes);
    }
    msg_ready[{stage, micro, backward}] = arrival;
  };

  // ---- run to fixed point: ranks execute ops as dependencies resolve ----
  bool progressed = true;
  std::size_t remaining = 0;
  for (const auto& rs : ranks) remaining += rs.ops.size();
  while (remaining > 0) {
    PAC_CHECK(progressed, "simulator deadlock: schedule dependency cycle");
    progressed = false;
    for (RankState& rs : ranks) {
      while (rs.next_op < rs.ops.size()) {
        const auto& op = rs.ops[rs.next_op];
        const std::int64_t micro = rs.micro_of_op[rs.next_op];
        const bool backward = op.kind == pipeline::PipeOp::Kind::kBackward;
        double input_ready = 0.0;
        if (!backward && rs.stage > 0) {
          auto it = msg_ready.find({rs.stage - 1, micro, false});
          if (it == msg_ready.end()) break;  // producer not done yet
          input_ready = it->second;
        } else if (backward && rs.stage + 1 < s) {
          auto it = msg_ready.find({rs.stage + 1, micro, true});
          if (it == msg_ready.end()) break;
          input_ready = it->second;
        }
        const StageCost& sc = stage_costs[static_cast<std::size_t>(rs.stage)];
        const double dur = (backward ? sc.t_bwd : sc.t_fwd) /
                           input.device_scale(rs.rank);
        const double start = std::max(rs.clock, input_ready);
        rs.clock = start + dur;
        rs.busy += dur;
        if (config.record_trace) {
          result.trace.push_back(OpTrace{rs.rank, rs.stage, micro, backward,
                                         start, rs.clock});
        }
        if (!backward && rs.stage + 1 < s) {
          send_message(rs.rank, owner(rs.stage + 1, micro), rs.clock,
                       static_cast<double>(sc.fwd_msg), rs.stage, micro,
                       false);
        } else if (backward && rs.stage > 0) {
          send_message(rs.rank, owner(rs.stage - 1, micro), rs.clock,
                       static_cast<double>(sc.bwd_msg), rs.stage, micro,
                       true);
        }
        ++rs.next_op;
        --remaining;
        progressed = true;
      }
    }
  }

  // ---- gradient AllReduce within each stage group ----
  double makespan = 0.0;
  for (RankState& rs : ranks) makespan = std::max(makespan, rs.clock);
  if (config.include_allreduce) {
    double ar_extra = 0.0;
    for (std::int64_t i = 0; i < s; ++i) {
      const auto& st = plan.stages[static_cast<std::size_t>(i)];
      const int g = static_cast<int>(st.devices.size());
      if (g <= 1) continue;
      const double ar = input.network.allreduce_seconds(
          stage_costs[static_cast<std::size_t>(i)].trainable, g);
      // Group members finish their ops, then AllReduce together.
      double group_end = 0.0;
      for (int r : st.devices) {
        group_end = std::max(group_end,
                             ranks[rank_index[r]].clock);
      }
      ar_extra = std::max(ar_extra, group_end + ar - makespan);
      result.comm_bytes +=
          2 * static_cast<std::uint64_t>(g - 1) *
          (stage_costs[static_cast<std::size_t>(i)].trainable /
           static_cast<std::uint64_t>(g));
    }
    if (ar_extra > 0.0) makespan += ar_extra;
  }

  result.minibatch_seconds = makespan;
  double busy_sum = 0.0;
  for (const RankState& rs : ranks) busy_sum += rs.busy;
  result.bubble_fraction =
      1.0 - busy_sum / (makespan * static_cast<double>(ranks.size()));
  return result;
}

std::string render_timeline(const SimConfig& config, int width) {
  PAC_CHECK(width >= 16, "timeline width too small");
  SimConfig traced = config;
  traced.record_trace = true;
  SimResult r = simulate_minibatch(traced);
  std::ostringstream os;
  if (r.oom) {
    os << "OOM: " << r.oom_reason << "\n";
    return os.str();
  }
  const double span = r.minibatch_seconds;
  auto col = [&](double t) {
    return std::min<int>(width - 1,
                         static_cast<int>(t / span * width));
  };
  // Collect participating ranks in plan order.
  std::vector<int> ranks;
  for (const auto& st : config.plan.stages) {
    ranks.insert(ranks.end(), st.devices.begin(), st.devices.end());
  }
  std::map<int, std::string> rows;
  for (int rank : ranks) rows[rank] = std::string(width, '.');
  constexpr char kHex[] = "0123456789ABCDEF";
  for (const OpTrace& op : r.trace) {
    std::string& row = rows[op.rank];
    const int b = col(op.start);
    const int e = std::max(b + 1, col(op.end));
    // Span body: '=' for forward, '~' for backward; first cell labels the
    // op ('0'-'F' hex micro id for forward, 'b' for backward).
    for (int i = b; i < e && i < width; ++i) {
      row[static_cast<std::size_t>(i)] = op.backward ? '~' : '=';
    }
    if (b < width) {
      row[static_cast<std::size_t>(b)] =
          op.backward ? 'b' : kHex[op.micro % 16];
    }
  }
  os << "mini-batch " << span << " s, bubble "
     << static_cast<int>(100.0 * r.bubble_fraction) << "%\n";
  for (int rank : ranks) {
    os << "dev" << rank << " |" << rows[rank] << "|\n";
  }
  os << "      <hex>== forward of that micro, b~~ = backward, . = idle\n";
  return os.str();
}

}  // namespace pac::sim
