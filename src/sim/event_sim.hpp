// Discrete-event simulator for one mini-batch of pipeline execution.
//
// Replays the exact 1F1B (or GPipe) op sequence every rank would run —
// same micro-batch routing as the executed StageWorker — against the
// analytic block costs: devices are serial compute resources, each
// directed link is a serial transfer resource, forwards/backwards wait on
// the producing rank's message.  Output is the mini-batch makespan, the
// per-device busy fraction (1 - bubble), peak modeled memory, and total
// traffic.  This is what regenerates the paper's Jetson-scale timing
// numbers (Tables 2, Figs 8a/9a/11) without the hardware.
#pragma once

#include "pipeline/plan.hpp"
#include "pipeline/schedule.hpp"
#include "planner/profile.hpp"

namespace pac::sim {

struct SimConfig {
  planner::PlannerInput input;
  pipeline::ParallelPlan plan;
  pipeline::ScheduleKind schedule = pipeline::ScheduleKind::k1F1B;
  bool include_allreduce = true;
  bool record_trace = false;  // fill SimResult::trace for visualization
};

// One simulated compute op (for traces / Gantt rendering).
struct OpTrace {
  int rank = -1;
  int stage = -1;
  std::int64_t micro = -1;
  bool backward = false;
  double start = 0.0;
  double end = 0.0;
};

struct SimResult {
  bool oom = false;
  int oom_device = -1;
  std::string oom_reason;
  double minibatch_seconds = 0.0;
  double bubble_fraction = 0.0;   // 1 - mean busy/makespan over used devices
  std::uint64_t comm_bytes = 0;   // inter-device traffic (p2p + allreduce)
  std::vector<std::uint64_t> peak_memory_per_device;
  std::vector<OpTrace> trace;     // populated when record_trace is set
};

SimResult simulate_minibatch(const SimConfig& config);

// ASCII Gantt chart of a simulated mini-batch: one row per device, time on
// the horizontal axis.  Forward ops render as the micro-batch id in hex
// (uppercase), backwards in lowercase, idle as '.', AllReduce as '*'.
std::string render_timeline(const SimConfig& config, int width = 72);

}  // namespace pac::sim
