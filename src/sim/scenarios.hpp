// Paper-scale end-to-end training scenarios (the rows of Table 2 and the
// series of Figs. 8a, 9, 11).
//
// Systems modeled, matching the paper's baselines §6.1:
//   Standalone — one device, whole model.
//   EDDL       — pure data parallelism; every device replicates the model
//                and processes its own mini-batch of `per_device_batch`
//                (Table 2's EDDL memory/OOM behaviour implies per-device
//                batches, and Hao & Zhang's EDDL scales batches with
//                devices).
//   Eco-FL     — pure pipeline parallelism, one stage per device, GPipe
//                micro-batching (the paper notes baselines run without the
//                1F1B schedule).
//   PAC        — planner-chosen hybrid parallelism with 1F1B; with the
//                Parallel Adapters technique, epochs >= 2 use the
//                activation cache (pure DP over cached activations) after
//                a one-off cache/parameter redistribution.
//
// The activation cache is stored and shipped as fp16 (half the fp32
// in-memory footprint); DESIGN.md records this substitution.
#pragma once

#include "costmodel/memory_model.hpp"
#include "data/dataset.hpp"
#include "sim/event_sim.hpp"

namespace pac::sim {

enum class SystemKind { kStandalone, kEcoFl, kEddl, kPac };

const char* system_name(SystemKind kind);

struct ScenarioConfig {
  model::ModelConfig model;
  model::Technique technique = model::Technique::kParallelAdapters;
  data::GlueTask task = data::GlueTask::kMrpc;
  int num_devices = 8;
  std::int64_t global_batch = 16;      // Standalone / Eco-FL / PAC
  std::int64_t per_device_batch = 16;  // EDDL and PAC's cached phase
  std::int64_t seq = 128;
  std::int64_t pac_micro_batches = 16;
  bool pac_use_cache = true;
  // Cache storage/wire precision in bytes per element: 4 = fp32, 2 = fp16
  // (default — matches CacheConfig::dtype = kF16), 1 = int8 (adds the
  // per-row scale overhead).  See costmodel::cache_bytes_per_sample.
  std::uint64_t cache_bytes_per_element = 2;
  costmodel::DeviceModel device = costmodel::jetson_nano();
  costmodel::NetworkModel network = costmodel::edge_lan();
  // Overrides; <= 0 means "use the paper's numbers for the task".
  std::int64_t train_samples = -1;
  int epochs = -1;
  // Fault model (PAC only; other systems have no recovery path and
  // ignore it).  `fail_device >= 0` kills that device partway through
  // epoch 1; the runtime's recovery strategy for a first-epoch death is a
  // full restart on the survivors, so the simulated cost is the wasted
  // fraction of the full-strength first epoch plus a complete run on
  // `num_devices - 1` devices.
  int fail_device = -1;
  double fail_at_epoch_fraction = 0.5;  // in [0, 1]
  // Compute-slowdown model (PAC only): `throttle_device >= 0` dilates that
  // device's compute by `throttle_factor` from `throttle_at_epoch_fraction`
  // of epoch 1 onward.  With `elastic_replan` the runtime's elastic path is
  // modeled — the throttled remainder of epoch 1 is wasted, the epoch
  // restarts under a plan priced with the degraded device, and the cached
  // phase shards throughput-weighted; without it the degraded device paces
  // every mini-batch of the rest of the run.
  int throttle_device = -1;
  double throttle_factor = 1.0;             // >= 1; 1 = no slowdown
  double throttle_at_epoch_fraction = 0.5;  // in [0, 1]
  bool elastic_replan = true;
};

struct ScenarioResult {
  bool oom = false;
  std::string oom_reason;
  double total_hours = 0.0;
  double seconds_per_sample = 0.0;       // averaged over the whole run
  double first_epoch_seconds = 0.0;
  double later_epoch_seconds = 0.0;      // per epoch (cached under PAC)
  double redistribution_seconds = 0.0;   // PAC phase transition
  double recovery_seconds = 0.0;         // wasted work absorbed by a death
  int surviving_devices = 0;             // devices after any modeled death
  double throughput_samples_per_s = 0.0; // epoch-1-style steady state
  pipeline::ParallelPlan plan;
  std::vector<std::uint64_t> peak_memory_per_device;
  std::vector<std::uint64_t> weight_memory_per_device;
};

ScenarioResult simulate_system(SystemKind kind, const ScenarioConfig& config);

}  // namespace pac::sim
