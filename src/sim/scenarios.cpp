#include "sim/scenarios.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "planner/planner.hpp"

namespace pac::sim {

using model::Technique;

const char* system_name(SystemKind kind) {
  switch (kind) {
    case SystemKind::kStandalone: return "Standalone";
    case SystemKind::kEcoFl: return "Eco-FL";
    case SystemKind::kEddl: return "EDDL";
    case SystemKind::kPac: return "PAC";
  }
  return "?";
}

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

struct MinibatchSim {
  SimResult sim;
  pipeline::ParallelPlan plan;
  std::int64_t samples_per_minibatch = 0;
};

// One epoch-1-style mini-batch under the given system.
MinibatchSim simulate_system_minibatch(SystemKind kind,
                                       const ScenarioConfig& cfg,
                                       const model::TechniqueConfig& tc) {
  MinibatchSim out;
  SimConfig sim_cfg;
  sim_cfg.schedule = kind == SystemKind::kEcoFl
                         ? pipeline::ScheduleKind::kGPipe
                         : pipeline::ScheduleKind::k1F1B;

  std::int64_t micros = 1;
  std::int64_t micro_batch = cfg.global_batch;
  int devices = cfg.num_devices;
  switch (kind) {
    case SystemKind::kStandalone:
      devices = 1;
      micros = 1;
      micro_batch = cfg.global_batch;
      out.samples_per_minibatch = cfg.global_batch;
      break;
    case SystemKind::kEddl:
      micros = devices;  // one micro (= local mini-batch) per device
      micro_batch = cfg.per_device_batch;
      out.samples_per_minibatch =
          cfg.per_device_batch * static_cast<std::int64_t>(devices);
      break;
    case SystemKind::kEcoFl:
      micros = std::min<std::int64_t>(cfg.global_batch, devices);
      micro_batch = std::max<std::int64_t>(1, cfg.global_batch / micros);
      out.samples_per_minibatch = cfg.global_batch;
      break;
    case SystemKind::kPac:
      micros = std::min<std::int64_t>(cfg.global_batch,
                                      cfg.pac_micro_batches);
      micro_batch = std::max<std::int64_t>(1, cfg.global_batch / micros);
      out.samples_per_minibatch = cfg.global_batch;
      break;
  }

  const costmodel::SeqShape micro_shape{micro_batch, cfg.seq, 16};
  sim_cfg.input = planner::analytic_planner_input(
      cfg.model, tc, micro_shape, cfg.device, cfg.network, devices, micros,
      /*include_decoder=*/true);
  sim_cfg.input.gpipe_memory = kind == SystemKind::kEcoFl;

  const std::int64_t blocks = sim_cfg.input.num_blocks();
  switch (kind) {
    case SystemKind::kStandalone:
      out.plan = pipeline::ParallelPlan::standalone(blocks, micros);
      break;
    case SystemKind::kEddl:
      out.plan = pipeline::ParallelPlan::pure_data_parallel(blocks, devices,
                                                            micros);
      break;
    case SystemKind::kEcoFl:
      out.plan = pipeline::ParallelPlan::pure_pipeline(blocks, devices,
                                                       micros);
      break;
    case SystemKind::kPac: {
      planner::PlanEstimate est = planner::plan_hybrid(sim_cfg.input);
      if (!est.feasible) {
        out.sim.oom = true;
        out.sim.oom_reason = est.note;
        return out;
      }
      out.plan = est.plan;
      break;
    }
  }
  sim_cfg.plan = out.plan;
  out.sim = simulate_minibatch(sim_cfg);
  return out;
}

// The planner input PAC's mini-batch simulation uses (the kPac case
// above), exposed so the throttle model can re-price plans with a
// degraded device scale.
planner::PlannerInput pac_planner_input(const ScenarioConfig& cfg,
                                        const model::TechniqueConfig& tc) {
  const std::int64_t micros =
      std::min<std::int64_t>(cfg.global_batch, cfg.pac_micro_batches);
  const std::int64_t micro_batch =
      std::max<std::int64_t>(1, cfg.global_batch / micros);
  const costmodel::SeqShape micro_shape{micro_batch, cfg.seq, 16};
  return planner::analytic_planner_input(cfg.model, tc, micro_shape,
                                         cfg.device, cfg.network,
                                         cfg.num_devices, micros,
                                         /*include_decoder=*/true);
}

// Components of one phase-2 (cached DP) step, shared by the clean run and
// the throttle model (which re-weights the compute term).
struct Phase2Step {
  double compute_s = 0.0;  // per-device side-network fwd+bwd
  double reload_s = 0.0;   // cache reload from flash
  double ar_s = 0.0;       // adapter-grad AllReduce
  std::int64_t minibatch = 0;
  std::uint64_t cache_per_sample = 0;  // fp16 wire/flash bytes
};

Phase2Step pac_phase2_step(const ScenarioConfig& cfg,
                           const model::TechniqueConfig& tc) {
  Phase2Step out;
  out.cache_per_sample = costmodel::cache_bytes_per_sample(
      cfg.model, cfg.seq, true, cfg.cache_bytes_per_element);
  const int d = cfg.num_devices;
  out.minibatch = cfg.per_device_batch * static_cast<std::int64_t>(d);
  const costmodel::SeqShape dev_shape{cfg.per_device_batch, cfg.seq, 16};
  const costmodel::Flops side = costmodel::model_flops(
      cfg.model, tc, dev_shape, /*include_decoder=*/true,
      /*cached_epoch=*/true);
  out.compute_s = side.total() / cfg.device.effective_flops;
  out.reload_s = static_cast<double>(out.cache_per_sample) *
                 static_cast<double>(cfg.per_device_batch) * 8.0 /
                 cfg.device.flash_read_bps;
  out.ar_s = cfg.network.allreduce_seconds(
      costmodel::trainable_param_bytes(cfg.model, tc, true), d);
  return out;
}

}  // namespace

ScenarioResult simulate_system(SystemKind kind,
                               const ScenarioConfig& config) {
  // Modeled device death during epoch 1 (PAC only).  Mirrors the runtime:
  // a first-epoch death restarts the attempt on the survivors, so the run
  // costs the wasted fraction of the full-strength first epoch plus a
  // complete fault-free run over one fewer device.
  if (kind == SystemKind::kPac && config.fail_device >= 0 &&
      config.fail_device < config.num_devices && config.num_devices > 1) {
    PAC_CHECK(config.fail_at_epoch_fraction >= 0.0 &&
                  config.fail_at_epoch_fraction <= 1.0,
              "fail_at_epoch_fraction must be in [0, 1]");
    ScenarioConfig full_cfg = config;
    full_cfg.fail_device = -1;
    const ScenarioResult full = simulate_system(kind, full_cfg);
    if (full.oom) return full;  // the doomed attempt never got started

    ScenarioConfig survivor_cfg = full_cfg;
    survivor_cfg.num_devices = config.num_devices - 1;
    ScenarioResult rec = simulate_system(kind, survivor_cfg);
    rec.surviving_devices = survivor_cfg.num_devices;
    if (rec.oom) return rec;  // survivors cannot fit the model

    rec.recovery_seconds =
        config.fail_at_epoch_fraction * full.first_epoch_seconds;
    rec.total_hours += rec.recovery_seconds / 3600.0;
    const data::TaskInfo fault_info = data::task_info(config.task);
    const std::int64_t fault_samples =
        config.train_samples > 0 ? config.train_samples
                                 : fault_info.paper_train_samples;
    const int fault_epochs =
        config.epochs > 0 ? config.epochs : fault_info.paper_epochs;
    rec.seconds_per_sample = rec.total_hours * 3600.0 /
                             (static_cast<double>(fault_samples) *
                              static_cast<double>(fault_epochs));
    return rec;
  }

  // Modeled compute slowdown from partway through epoch 1 (PAC only).
  if (kind == SystemKind::kPac && config.throttle_device >= 0 &&
      config.throttle_device < config.num_devices &&
      config.throttle_factor > 1.0) {
    PAC_CHECK(config.throttle_at_epoch_fraction >= 0.0 &&
                  config.throttle_at_epoch_fraction <= 1.0,
              "throttle_at_epoch_fraction must be in [0, 1]");
    ScenarioConfig clean_cfg = config;
    clean_cfg.throttle_device = -1;
    ScenarioResult out = simulate_system(kind, clean_cfg);
    if (out.oom) return out;

    const data::TaskInfo t_info = data::task_info(config.task);
    const model::TechniqueConfig tc =
        model::paper_technique_config(config.technique);
    const std::int64_t samples = config.train_samples > 0
                                     ? config.train_samples
                                     : t_info.paper_train_samples;
    const int epochs =
        config.epochs > 0 ? config.epochs : t_info.paper_epochs;
    const std::int64_t steps = ceil_div(samples, config.global_batch);
    const bool cached = config.pac_use_cache &&
                        config.technique == Technique::kParallelAdapters;
    const Phase2Step p2 = pac_phase2_step(clean_cfg, tc);
    const std::int64_t steps2 = ceil_div(samples, p2.minibatch);
    const double d = static_cast<double>(config.num_devices);
    const double f = config.throttle_factor;

    // The calibration profile, with the degraded device priced in.
    planner::PlannerInput hetero = pac_planner_input(clean_cfg, tc);
    hetero.device_scales.assign(
        static_cast<std::size_t>(config.num_devices), 1.0);
    hetero.device_scales[static_cast<std::size_t>(config.throttle_device)] =
        1.0 / f;
    const double degraded_epoch =
        static_cast<double>(steps) *
        planner::evaluate_plan(hetero, out.plan).minibatch_seconds;

    if (config.elastic_replan) {
      // Detection + restart: the epoch fraction already run is wasted, the
      // retry runs a plan the DP chose knowing the device's real speed.
      out.recovery_seconds =
          config.throttle_at_epoch_fraction * out.first_epoch_seconds;
      planner::PlanEstimate replanned = planner::plan_hybrid(hetero);
      if (replanned.feasible) {
        out.plan = replanned.plan;
        out.first_epoch_seconds =
            static_cast<double>(steps) * replanned.minibatch_seconds;
      } else {
        out.first_epoch_seconds = degraded_epoch;
      }
      if (cached) {
        // Throughput-weighted shards: aggregate speed d-1 + 1/f replaces
        // d, and no device waits on the straggler's oversized share.
        const double step_s =
            p2.compute_s * d / (d - 1.0 + 1.0 / f) + p2.reload_s + p2.ar_s;
        out.later_epoch_seconds = static_cast<double>(steps2) * step_s;
      } else {
        out.later_epoch_seconds = out.first_epoch_seconds;
      }
    } else {
      // No elastic runtime: the slow device paces everything after onset.
      out.first_epoch_seconds =
          config.throttle_at_epoch_fraction * out.first_epoch_seconds +
          (1.0 - config.throttle_at_epoch_fraction) * degraded_epoch;
      if (cached) {
        // Even shards: every lockstep AllReduce waits on the straggler's
        // f-times-dilated compute.
        const double step_s = p2.compute_s * f + p2.reload_s + p2.ar_s;
        out.later_epoch_seconds = static_cast<double>(steps2) * step_s;
      } else {
        out.later_epoch_seconds = degraded_epoch;
      }
    }
    out.total_hours =
        (out.recovery_seconds + out.first_epoch_seconds +
         out.redistribution_seconds +
         static_cast<double>(epochs - 1) * out.later_epoch_seconds) /
        3600.0;
    out.seconds_per_sample =
        out.total_hours * 3600.0 /
        (static_cast<double>(samples) * static_cast<double>(epochs));
    return out;
  }

  const data::TaskInfo info = data::task_info(config.task);
  const model::TechniqueConfig tc =
      model::paper_technique_config(config.technique);
  const std::int64_t samples = config.train_samples > 0
                                   ? config.train_samples
                                   : info.paper_train_samples;
  const int epochs = config.epochs > 0 ? config.epochs : info.paper_epochs;

  ScenarioResult result;
  result.surviving_devices =
      kind == SystemKind::kStandalone ? 1 : config.num_devices;
  MinibatchSim mb = simulate_system_minibatch(kind, config, tc);
  result.plan = mb.plan;
  if (mb.sim.oom) {
    result.oom = true;
    result.oom_reason = mb.sim.oom_reason;
    result.peak_memory_per_device = mb.sim.peak_memory_per_device;
    return result;
  }
  result.peak_memory_per_device = mb.sim.peak_memory_per_device;
  result.throughput_samples_per_s =
      static_cast<double>(mb.samples_per_minibatch) /
      mb.sim.minibatch_seconds;

  // Per-device weight bytes of the chosen plan.
  {
    planner::PlanEstimate est = planner::evaluate_plan(
        [&] {
          SimConfig tmp;
          const costmodel::SeqShape shape{
              std::max<std::int64_t>(1, config.global_batch), config.seq, 16};
          (void)tmp;
          return planner::analytic_planner_input(
              config.model, tc, shape, config.device, config.network,
              kind == SystemKind::kStandalone ? 1 : config.num_devices,
              mb.plan.num_micro_batches, true);
        }(),
        mb.plan);
    result.weight_memory_per_device.assign(
        static_cast<std::size_t>(config.num_devices), 0);
    for (std::size_t s = 0; s < mb.plan.stages.size(); ++s) {
      for (int r : mb.plan.stages[s].devices) {
        result.weight_memory_per_device[static_cast<std::size_t>(r)] =
            est.stage_weight_bytes[s];
      }
    }
  }

  const std::int64_t steps = ceil_div(samples, mb.samples_per_minibatch);
  result.first_epoch_seconds =
      static_cast<double>(steps) * mb.sim.minibatch_seconds;

  const bool cached = kind == SystemKind::kPac && config.pac_use_cache &&
                      config.technique == Technique::kParallelAdapters;
  if (!cached) {
    result.later_epoch_seconds = result.first_epoch_seconds;
    result.total_hours = static_cast<double>(epochs) *
                         result.first_epoch_seconds / 3600.0;
  } else {
    // ---- phase transition: cache + parameter redistribution ----
    const Phase2Step p2 = pac_phase2_step(config, tc);
    const double total_cache_bytes =
        static_cast<double>(p2.cache_per_sample) *
        static_cast<double>(samples);
    // All-to-all: each device ships (1 - 1/D) of its shard; transfers on
    // distinct device pairs proceed in parallel, so the wall time is one
    // device's outbound traffic at link bandwidth.
    const int d = config.num_devices;
    const double outbound_per_device =
        total_cache_bytes / d * (1.0 - 1.0 / d);
    result.redistribution_seconds =
        outbound_per_device * 8.0 / config.network.bandwidth_bps + p2.ar_s;

    // ---- cached epochs: pure DP over the side network ----
    const double step_s = p2.compute_s + p2.reload_s + p2.ar_s;
    const std::int64_t steps2 = ceil_div(samples, p2.minibatch);
    result.later_epoch_seconds = static_cast<double>(steps2) * step_s;

    result.total_hours =
        (result.first_epoch_seconds + result.redistribution_seconds +
         static_cast<double>(epochs - 1) * result.later_epoch_seconds) /
        3600.0;
  }
  result.seconds_per_sample = result.total_hours * 3600.0 /
                              (static_cast<double>(samples) *
                               static_cast<double>(epochs));
  return result;
}

}  // namespace pac::sim
