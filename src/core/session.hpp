// pac::core::Session — the public PAC API (paper Fig. 4, steps 0-5).
//
//   0. The target model is equipped with Parallel Adapters (technique
//      config) and the backbone frozen.
//   1. The profiler fine-tunes on a calibration micro-batch and records
//      per-block runtime and tensor sizes.
//   2. The planner turns profiles + cluster shape into a hybrid
//      data/pipeline plan (stage boundaries + device groups).
//   3/4. Phase 1: one epoch of hybrid-parallel fine-tuning across the
//      cluster, recording every backbone activation into per-device cache
//      shards.
//   5. Phase 2: cache and adapter parameters are redistributed; remaining
//      epochs train the side network with pure data parallelism from the
//      cache — no backbone forward or backward at all.
//
// Sessions run any fine-tuning technique; the activation-cache phases
// engage only under Parallel Adapters (other techniques train all epochs
// under the hybrid plan, like the paper's baselines).
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>

#include "baselines/baselines.hpp"
#include "cache/activation_cache.hpp"
#include "cache/redistribution.hpp"
#include "data/dataset.hpp"
#include "elastic/health.hpp"
#include "pipeline/runners.hpp"
#include "planner/planner.hpp"

namespace pac::core {

struct SessionConfig {
  model::ModelConfig model;
  model::TechniqueConfig technique;  // default: Parallel Adapters, k = 8
  std::uint64_t model_seed = 42;

  std::int64_t batch_size = 8;
  std::int64_t num_micro_batches = 4;
  int epochs = 3;
  float lr = 1e-2F;
  std::uint64_t shuffle_seed = 77;

  bool use_activation_cache = true;
  bool cache_disk_backed = false;
  std::string cache_directory;  // required when disk-backed
  // Storage precision for cached activations.  kF32 (default) keeps every
  // existing run bit-identical; kF16/kI8 compress cache RAM, spill files,
  // and redistribution traffic 2-4x (phase-2 trains on the dequantized
  // activations).
  quant::Dtype cache_dtype = quant::Dtype::kF32;

  pipeline::ScheduleKind schedule = pipeline::ScheduleKind::k1F1B;
  dist::AllReduceAlgo allreduce = dist::AllReduceAlgo::kRing;
  bool run_eval = true;

  // Communication overlap (see pipeline::RunConfig): async point-to-point
  // sends/recvs and the bucketed grad AllReduce in phase 1, background
  // cache prefetch in phase 2.  Loss trajectories are bit-identical with
  // these on or off.
  bool async_comm = true;
  std::int64_t allreduce_bucket_bytes = 256 * 1024;
  bool cache_prefetch = true;

  // Communication model the planner uses for this cluster.  Executed
  // clusters are in-process (memcpy-speed links); swap in
  // costmodel::edge_lan() when planning for a real 128 Mbps edge LAN.
  costmodel::NetworkModel network = costmodel::in_process_network();

  // Resilience: when planning finds no feasible configuration or a device
  // OOMs mid-run, halve the mini-batch (activations shrink proportionally)
  // and re-plan, up to this many times before giving up.
  int max_oom_retries = 2;

  // Device-death resilience: survive up to this many rank deaths per
  // run().  Phase 1 restarts on the survivors (partial cache shards must
  // be re-recorded anyway); phase 2 restores adapter params from the last
  // committed epoch, re-shards the cache over the survivors (the dead
  // device's shard is salvaged — it models a disk-persisted cache) and
  // resumes.  Set to 0 to rethrow the first death instead.
  int max_rank_recoveries = 1;

  // Elastic runtime (src/elastic): when elastic.enabled, every rank feeds
  // per-mini-batch compute timings to a HealthMonitor; a device whose
  // EWMA throughput falls below elastic.straggler_ratio x its group's
  // median for elastic.straggler_window consecutive mini-batches triggers
  // a mid-run re-plan at the mini-batch boundary — phase 1 restarts under
  // a plan rebuilt from the observed speeds, phase 2 re-shards the cache
  // throughput-weighted (or evicts the device when its observed scale is
  // below elastic.evict_ratio).  At most elastic.max_replans re-plans per
  // run().  Monitoring is observation-only until a verdict, so an
  // un-triggered run is bit-identical to elastic disabled.
  elastic::ElasticPolicy elastic;

  // Cooperative cancellation (the service dispatcher's cancel path).  When
  // non-null, run() polls the flag at safe boundaries — attempt start,
  // between phase 1 and phase 2, and at every phase-2 resume — and throws
  // OperationCancelledError once it reads true.  Mid-epoch state is
  // discarded; committed epochs stay committed.
  const std::atomic<bool>* cancel = nullptr;

  // Deterministic per-block profiles (bypasses the wall-clock profiler).
  // Chaos/recovery tests set this so the plan — and therefore the whole
  // training trajectory — is reproducible across runs.
  std::optional<std::vector<planner::BlockProfile>> profile_override;

  // Observability (src/obs): when enabled, run() owns a TraceSession
  // spanning every attempt (clean or faulted — the recovery path's
  // restarts land in the same dump) and logs a final counter summary.
  // A non-empty trace_path implies enabled; the Chrome-trace JSON is written
  // there when run() returns or throws.  Off by default: tracing changes
  // no trajectory, but leaving it on would grow rings on every test.
  bool obs_enabled = false;
  std::string trace_path;
  std::size_t trace_ring_capacity = 1 << 14;  // events per thread
};

struct SessionReport {
  planner::PlanEstimate plan;
  int oom_retries = 0;                 // re-planning rounds that were needed
  int rank_deaths = 0;                 // device deaths survived this run
  std::vector<int> dead_ranks;         // ranks lost, in order of death
  int replans = 0;                     // straggler re-plans this run
  std::vector<int> straggler_ranks;    // ranks flagged, in verdict order
  std::vector<int> evicted_ranks;      // stragglers dropped from phase 2
  std::int64_t effective_batch_size = 0;  // batch actually used
  double profile_seconds = 0.0;
  double planning_seconds = 0.0;

  pipeline::RunResult phase1;
  bool cache_used = false;
  cache::RedistStats redistribution;  // summed over devices
  double redistribution_seconds = 0.0;
  std::uint64_t cache_bytes_total = 0;
  pipeline::RunResult phase2;  // empty when cache unused

  std::vector<double> epoch_losses;  // all epochs, both phases
  double eval_metric = 0.0;
  double total_seconds = 0.0;
};

class Session {
 public:
  Session(dist::EdgeCluster& cluster,
          const data::Dataset& dataset, SessionConfig config);

  // Profiles, plans, and runs both fine-tuning phases.  On OOM (planner
  // infeasibility or a runtime device OOM) retries with a halved batch up
  // to config.max_oom_retries times, then rethrows.
  SessionReport run();

  // The plan only (steps 1-2), without training.
  planner::PlanEstimate plan();

 private:
  SessionReport run_attempt();
  // Throws OperationCancelledError when config_.cancel reads true.
  void check_cancelled() const;
  pipeline::ModelFactory make_factory(
      const std::map<std::string, Tensor>* overrides) const;
  std::vector<planner::BlockProfile> profile();
  // Profiles + plans over the cluster's *surviving* ranks, remapping the
  // planner's dense device indices onto cluster ranks.
  planner::PlanEstimate plan_over_alive(double* profile_seconds,
                                        double* planning_seconds);
  // Registers a death (the cluster may already have marked it) and
  // decides whether the recovery budget allows continuing.
  bool absorb_death(int rank);
  // Registers a straggler verdict: folds its observed per-rank speeds into
  // observed_scale_ (keeping the most pessimistic observation per rank)
  // and decides whether the re-plan budget allows continuing.
  bool absorb_straggler(const elastic::StragglerVerdict& verdict);

  dist::EdgeCluster& cluster_;
  const data::Dataset& dataset_;
  SessionConfig config_;
  model::TaskSpec task_;
  int recoveries_used_ = 0;
  std::vector<int> dead_ranks_seen_;
  int replans_used_ = 0;
  std::vector<int> straggler_ranks_;
  std::vector<int> evicted_ranks_;
  // Runtime-observed speed per cluster rank (1.0 = as profiled), kept
  // across attempts so the re-plan DP prices the degradation.
  std::map<int, double> observed_scale_;
};

}  // namespace pac::core
