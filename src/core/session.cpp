#include "core/session.hpp"

#include <mutex>

#include "common/logging.hpp"
#include "common/timer.hpp"
#include "planner/profiler.hpp"

namespace pac::core {

Session::Session(dist::EdgeCluster& cluster,
                 const data::Dataset& dataset,
                 SessionConfig config)
    : cluster_(cluster), dataset_(dataset), config_(std::move(config)) {
  const data::TaskInfo& info = dataset_.info();
  task_ = model::TaskSpec{info.kind, info.num_classes};
  PAC_CHECK(config_.model.vocab == dataset_.vocab(),
            "model vocab " << config_.model.vocab << " != dataset vocab "
                           << dataset_.vocab());
  PAC_CHECK(config_.epochs >= 1, "need at least one epoch");
}

pipeline::ModelFactory Session::make_factory(
    const std::map<std::string, Tensor>* overrides) const {
  const SessionConfig& cfg = config_;
  const model::TaskSpec task = task_;
  if (overrides == nullptr) {
    return [cfg, task] {
      return std::make_unique<model::Model>(cfg.model, cfg.technique, task,
                                            cfg.model_seed);
    };
  }
  const std::map<std::string, Tensor> values = *overrides;  // by value
  return [cfg, task, values] {
    auto m = std::make_unique<model::Model>(cfg.model, cfg.technique, task,
                                            cfg.model_seed);
    model::apply_parameter_overrides(*m, values);
    return m;
  };
}

std::vector<planner::BlockProfile> Session::profile() {
  auto m = make_factory(nullptr)();
  const std::int64_t micro_rows = std::max<std::int64_t>(
      1, config_.batch_size / std::max<std::int64_t>(
                                  1, config_.num_micro_batches));
  std::vector<std::int64_t> idx(static_cast<std::size_t>(
      std::min<std::int64_t>(micro_rows, dataset_.train_size())));
  std::iota(idx.begin(), idx.end(), 0);
  auto batch = dataset_.make_train_batch(idx);
  return planner::profile_model(*m, batch.tokens, /*iters=*/3);
}

planner::PlanEstimate Session::plan() {
  WallTimer profile_timer;
  planner::PlannerInput input;
  input.blocks = profile();
  const double profile_s = profile_timer.seconds();

  input.num_devices = cluster_.size();
  std::uint64_t budget = std::numeric_limits<std::uint64_t>::max();
  for (int r = 0; r < cluster_.size(); ++r) {
    budget = std::min(budget, cluster_.ledger(r).budget());
  }
  input.device_budget_bytes = budget;
  input.num_micro_batches = config_.num_micro_batches;
  input.network = config_.network;
  for (int r = 0; r < cluster_.size(); ++r) {
    input.device_scales.push_back(cluster_.spec(r).compute_scale);
  }

  WallTimer plan_timer;
  planner::PlanEstimate est = planner::plan_hybrid(input);
  PAC_LOG_INFO << "profiling " << profile_s << "s, planning "
               << plan_timer.seconds() << "s: " << est.note;
  return est;
}

SessionReport Session::run() {
  const std::int64_t original_batch = config_.batch_size;
  int retries = 0;
  for (;;) {
    try {
      SessionReport report = run_attempt();
      report.oom_retries = retries;
      report.effective_batch_size = config_.batch_size;
      config_.batch_size = original_batch;
      return report;
    } catch (const DeviceOomError&) {
      if (retries >= config_.max_oom_retries || config_.batch_size <= 1) {
        config_.batch_size = original_batch;
        throw;
      }
      ++retries;
      config_.batch_size = std::max<std::int64_t>(1, config_.batch_size / 2);
      config_.num_micro_batches = std::min<std::int64_t>(
          config_.num_micro_batches, config_.batch_size);
      PAC_LOG_WARN << "OOM; retrying with batch " << config_.batch_size
                   << " (retry " << retries << ")";
    }
  }
}

SessionReport Session::run_attempt() {
  SessionReport report;
  WallTimer total_timer;

  // ---- steps 1-2: profile + plan ----
  {
    WallTimer t;
    planner::PlannerInput input;
    input.blocks = profile();
    report.profile_seconds = t.seconds();
    input.num_devices = cluster_.size();
    std::uint64_t budget = std::numeric_limits<std::uint64_t>::max();
    for (int r = 0; r < cluster_.size(); ++r) {
      budget = std::min(budget, cluster_.ledger(r).budget());
    }
    input.device_budget_bytes = budget;
    input.num_micro_batches = config_.num_micro_batches;
    input.network = config_.network;
    for (int r = 0; r < cluster_.size(); ++r) {
      input.device_scales.push_back(cluster_.spec(r).compute_scale);
    }
    WallTimer t2;
    report.plan = planner::plan_hybrid(input);
    report.planning_seconds = t2.seconds();
  }
  if (!report.plan.feasible) {
    // Surfaced as a device OOM so the retry loop (and callers) treat
    // planner infeasibility and runtime OOM uniformly.
    std::uint64_t budget = std::numeric_limits<std::uint64_t>::max();
    for (int r = 0; r < cluster_.size(); ++r) {
      budget = std::min(budget, cluster_.ledger(r).budget());
    }
    std::uint64_t worst = 0;
    for (std::uint64_t m : report.plan.stage_memory_bytes) {
      worst = std::max(worst, m);
    }
    throw DeviceOomError(/*device_id=*/0, std::max(worst, budget + 1),
                         budget);
  }

  const bool cache_phase =
      config_.use_activation_cache &&
      config_.technique.technique ==
          model::Technique::kParallelAdapters &&
      config_.epochs > 1;
  report.cache_used = cache_phase;

  // ---- steps 3-4: phase-1 hybrid fine-tuning (with recording) ----
  const std::int64_t blocks_per_sample =
      config_.model.encoder_layers + 1;  // b_0 .. b_L
  std::vector<std::unique_ptr<cache::ActivationCache>> shards;
  std::vector<pipeline::ActivationRecorder*> recorders(
      static_cast<std::size_t>(cluster_.size()), nullptr);
  if (cache_phase) {
    for (int r = 0; r < cluster_.size(); ++r) {
      cache::CacheConfig cc;
      cc.num_blocks = blocks_per_sample;
      cc.disk_backed = config_.cache_disk_backed;
      if (cc.disk_backed) {
        PAC_CHECK(!config_.cache_directory.empty(),
                  "disk-backed cache needs cache_directory");
        cc.directory =
            config_.cache_directory + "/device_" + std::to_string(r);
      }
      cc.ledger = &cluster_.ledger(r);
      shards.push_back(std::make_unique<cache::ActivationCache>(cc));
      recorders[static_cast<std::size_t>(r)] = shards.back().get();
    }
  }

  {
    pipeline::RunConfig run;
    run.plan = report.plan.plan;
    run.schedule = config_.schedule;
    run.allreduce = config_.allreduce;
    run.batch_size = config_.batch_size;
    run.epochs = cache_phase ? 1 : config_.epochs;
    run.lr = config_.lr;
    run.shuffle_seed = config_.shuffle_seed;
    run.run_eval = config_.run_eval && !cache_phase;
    report.phase1 = pipeline::run_training(
        cluster_, dataset_, make_factory(nullptr), run,
        cache_phase ? &recorders : nullptr);
  }
  report.epoch_losses = report.phase1.epoch_losses;

  if (!cache_phase) {
    report.eval_metric = report.phase1.eval_metric;
    report.total_seconds = total_timer.seconds();
    return report;
  }

  // ---- step 5a: redistribute cache shards + adapter parameters ----
  {
    WallTimer t;
    auto target = cache::modulo_sharding(cluster_.size());
    std::mutex stats_mutex;
    cluster_.run([&](dist::DeviceContext& ctx) {
      cache::RedistStats stats = cache::redistribute_cache(
          ctx, *shards[static_cast<std::size_t>(ctx.rank)], target);
      std::lock_guard<std::mutex> stats_guard(stats_mutex);
      report.redistribution.items_sent += stats.items_sent;
      report.redistribution.items_received += stats.items_received;
      report.redistribution.payload_bytes_sent += stats.payload_bytes_sent;
    });
    report.redistribution_seconds = t.seconds();
  }
  for (const auto& shard : shards) {
    report.cache_bytes_total += shard->total_bytes();
  }

  // ---- step 5b: cached data-parallel epochs ----
  {
    std::vector<std::vector<std::int64_t>> assignments(
        static_cast<std::size_t>(cluster_.size()));
    for (std::int64_t s = 0; s < dataset_.train_size(); ++s) {
      assignments[static_cast<std::size_t>(s % cluster_.size())].push_back(
          s);
    }
    std::vector<const pipeline::ActivationSource*> sources;
    for (const auto& shard : shards) sources.push_back(shard.get());

    pipeline::CachedRunConfig run;
    run.device_batch_size = std::max<std::int64_t>(
        1, config_.batch_size / cluster_.size());
    run.epochs = config_.epochs - 1;
    run.lr = config_.lr;
    run.allreduce = config_.allreduce;
    run.shuffle_seed = config_.shuffle_seed + 991;
    run.run_eval = config_.run_eval;
    report.phase2 = pipeline::run_cached_data_parallel(
        cluster_, dataset_, make_factory(&report.phase1.trainable_values),
        sources, assignments, run);
  }
  report.epoch_losses.insert(report.epoch_losses.end(),
                             report.phase2.epoch_losses.begin(),
                             report.phase2.epoch_losses.end());
  report.eval_metric = report.phase2.eval_metric;
  report.total_seconds = total_timer.seconds();
  return report;
}

}  // namespace pac::core
