#include "core/session.hpp"

#include <mutex>

#include "common/logging.hpp"
#include "common/timer.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "planner/profiler.hpp"

namespace pac::core {

Session::Session(dist::EdgeCluster& cluster,
                 const data::Dataset& dataset,
                 SessionConfig config)
    : cluster_(cluster), dataset_(dataset), config_(std::move(config)) {
  const data::TaskInfo& info = dataset_.info();
  task_ = model::TaskSpec{info.kind, info.num_classes};
  PAC_CHECK(config_.model.vocab == dataset_.vocab(),
            "model vocab " << config_.model.vocab << " != dataset vocab "
                           << dataset_.vocab());
  PAC_CHECK(config_.epochs >= 1, "need at least one epoch");
}

pipeline::ModelFactory Session::make_factory(
    const std::map<std::string, Tensor>* overrides) const {
  const SessionConfig& cfg = config_;
  const model::TaskSpec task = task_;
  if (overrides == nullptr) {
    return [cfg, task] {
      return std::make_unique<model::Model>(cfg.model, cfg.technique, task,
                                            cfg.model_seed);
    };
  }
  const std::map<std::string, Tensor> values = *overrides;  // by value
  return [cfg, task, values] {
    auto m = std::make_unique<model::Model>(cfg.model, cfg.technique, task,
                                            cfg.model_seed);
    model::apply_parameter_overrides(*m, values);
    return m;
  };
}

std::vector<planner::BlockProfile> Session::profile() {
  if (config_.profile_override.has_value()) {
    return *config_.profile_override;
  }
  auto m = make_factory(nullptr)();
  const std::int64_t micro_rows = std::max<std::int64_t>(
      1, config_.batch_size / std::max<std::int64_t>(
                                  1, config_.num_micro_batches));
  std::vector<std::int64_t> idx(static_cast<std::size_t>(
      std::min<std::int64_t>(micro_rows, dataset_.train_size())));
  std::iota(idx.begin(), idx.end(), 0);
  auto batch = dataset_.make_train_batch(idx);
  return planner::profile_model(*m, batch.tokens, /*iters=*/3);
}

planner::PlanEstimate Session::plan_over_alive(double* profile_seconds,
                                               double* planning_seconds) {
  WallTimer profile_timer;
  planner::PlannerInput input;
  input.blocks = profile();
  if (profile_seconds != nullptr) *profile_seconds = profile_timer.seconds();

  const std::vector<int> alive = cluster_.alive_ranks();
  input.num_devices = static_cast<int>(alive.size());
  std::uint64_t budget = std::numeric_limits<std::uint64_t>::max();
  for (int r : alive) {
    budget = std::min(budget, cluster_.ledger(r).budget());
  }
  input.device_budget_bytes = budget;
  input.num_micro_batches = config_.num_micro_batches;
  input.network = config_.network;
  for (int r : alive) {
    input.device_scales.push_back(cluster_.spec(r).compute_scale);
  }

  // Elastic re-plan: price in runtime-observed slowdowns (if any) so the
  // DP shifts blocks and micro ownership away from degraded devices.
  std::vector<double> observed(alive.size(), 1.0);
  bool any_observed = false;
  for (std::size_t i = 0; i < alive.size(); ++i) {
    const auto it = observed_scale_.find(alive[i]);
    if (it != observed_scale_.end() && it->second != 1.0) {
      observed[i] = it->second;
      any_observed = true;
    }
  }

  WallTimer plan_timer;
  planner::PlanEstimate est = any_observed
                                  ? planner::replan_hybrid(input, observed)
                                  : planner::plan_hybrid(input);
  if (planning_seconds != nullptr) *planning_seconds = plan_timer.seconds();

  // The planner assigns dense device indices 0..n_alive-1; remap them onto
  // the surviving cluster ranks (stage groups stay contiguous and sorted
  // because alive ranks are sorted).
  for (auto& st : est.plan.stages) {
    for (int& d : st.devices) {
      d = alive[static_cast<std::size_t>(d)];
    }
  }
  return est;
}

planner::PlanEstimate Session::plan() {
  double profile_s = 0.0;
  double plan_s = 0.0;
  planner::PlanEstimate est = plan_over_alive(&profile_s, &plan_s);
  PAC_LOG_INFO << "profiling " << profile_s << "s, planning " << plan_s
               << "s: " << est.note;
  return est;
}

bool Session::absorb_death(int rank) {
  if (recoveries_used_ >= config_.max_rank_recoveries) return false;
  const int remaining =
      cluster_.num_alive() - (cluster_.is_dead(rank) ? 0 : 1);
  if (remaining < 1) return false;
  if (!cluster_.is_dead(rank)) cluster_.mark_dead(rank);
  ++recoveries_used_;
  dead_ranks_seen_.push_back(rank);
  return true;
}

bool Session::absorb_straggler(const elastic::StragglerVerdict& verdict) {
  if (replans_used_ >= config_.elastic.max_replans) return false;
  ++replans_used_;
  straggler_ranks_.push_back(verdict.rank);
  for (const auto& [rank, scale] : verdict.observed_scales) {
    const auto it = observed_scale_.find(rank);
    if (it == observed_scale_.end() || scale < it->second) {
      observed_scale_[rank] = scale;
    }
  }
  return true;
}

void Session::check_cancelled() const {
  if (config_.cancel != nullptr &&
      config_.cancel->load(std::memory_order_acquire)) {
    throw OperationCancelledError("session cancelled");
  }
}

SessionReport Session::run() {
  // One recording window over every attempt: faulted runs restart inside
  // the same session, so the post-mortem dump (written by the destructor
  // even when unwinding) shows the failed attempt alongside the retry.
  std::unique_ptr<obs::TraceSession> trace;
  if (config_.obs_enabled || !config_.trace_path.empty()) {
    obs::TraceSession::Options opts;
    opts.path = config_.trace_path;
    opts.ring_capacity = config_.trace_ring_capacity;
    obs::CounterRegistry::instance().reset();
    trace = std::make_unique<obs::TraceSession>(std::move(opts));
    obs::set_thread_name("session", 0);
  }
  const std::int64_t original_batch = config_.batch_size;
  recoveries_used_ = 0;
  dead_ranks_seen_.clear();
  replans_used_ = 0;
  straggler_ranks_.clear();
  evicted_ranks_.clear();
  observed_scale_.clear();
  int retries = 0;
  for (;;) {
    try {
      check_cancelled();
      SessionReport report = run_attempt();
      report.oom_retries = retries;
      report.rank_deaths = recoveries_used_;
      report.dead_ranks = dead_ranks_seen_;
      report.replans = replans_used_;
      report.straggler_ranks = straggler_ranks_;
      report.evicted_ranks = evicted_ranks_;
      report.effective_batch_size = config_.batch_size;
      config_.batch_size = original_batch;
      if (trace != nullptr) {
        PAC_LOG_INFO << "session counters:\n"
                     << obs::CounterRegistry::instance().summary_table();
      }
      return report;
    } catch (const DeviceOomError&) {
      if (retries >= config_.max_oom_retries || config_.batch_size <= 1) {
        config_.batch_size = original_batch;
        throw;
      }
      ++retries;
      config_.batch_size = std::max<std::int64_t>(1, config_.batch_size / 2);
      config_.num_micro_batches = std::min<std::int64_t>(
          config_.num_micro_batches, config_.batch_size);
      PAC_LOG_WARN << "OOM; retrying with batch " << config_.batch_size
                   << " (retry " << retries << ")";
    } catch (const elastic::StragglerDetectedError& e) {
      // Phase-1 verdict: restart the attempt — plan_over_alive folds the
      // observed speeds into the DP, so the retry runs the re-planned
      // schedule (phase 1 restarts reproduce the loss trajectory exactly:
      // gradients are full-batch means under any partitioning).
      if (!absorb_straggler(e.verdict())) {
        config_.batch_size = original_batch;
        throw;
      }
      PAC_LOG_WARN << "rank " << e.rank()
                   << " flagged as straggler (throughput ratio "
                   << e.verdict().throughput_ratio
                   << "); re-planning over observed speeds";
    } catch (const RankDeathError& e) {
      if (!absorb_death(e.rank())) {
        config_.batch_size = original_batch;
        throw;
      }
      PAC_LOG_WARN << "device " << e.rank() << " died; restarting over "
                   << cluster_.num_alive() << " survivors";
    } catch (const PeerDeadError& e) {
      // A recv-timeout presumption that no injected death explains: treat
      // the unresponsive peer as lost and continue without it.
      if (!absorb_death(e.rank())) {
        config_.batch_size = original_batch;
        throw;
      }
      PAC_LOG_WARN << "device " << e.rank()
                   << " presumed dead (recv timeout); restarting over "
                   << cluster_.num_alive() << " survivors";
    }
  }
}

SessionReport Session::run_attempt() {
  SessionReport report;
  WallTimer total_timer;
  const std::vector<int> alive = cluster_.alive_ranks();

  // ---- steps 1-2: profile + plan (over the surviving ranks) ----
  report.plan = plan_over_alive(&report.profile_seconds,
                                &report.planning_seconds);
  if (!report.plan.feasible) {
    // Surfaced as a device OOM so the retry loop (and callers) treat
    // planner infeasibility and runtime OOM uniformly.
    std::uint64_t budget = std::numeric_limits<std::uint64_t>::max();
    for (int r : alive) {
      budget = std::min(budget, cluster_.ledger(r).budget());
    }
    std::uint64_t worst = 0;
    for (std::uint64_t m : report.plan.stage_memory_bytes) {
      worst = std::max(worst, m);
    }
    throw DeviceOomError(/*device_id=*/alive[0],
                         std::max(worst, budget + 1), budget);
  }

  const bool cache_phase =
      config_.use_activation_cache &&
      config_.technique.technique ==
          model::Technique::kParallelAdapters &&
      config_.epochs > 1;
  report.cache_used = cache_phase;

  // ---- steps 3-4: phase-1 hybrid fine-tuning (with recording) ----
  const std::int64_t blocks_per_sample =
      config_.model.encoder_layers + 1;  // b_0 .. b_L
  std::vector<std::unique_ptr<cache::ActivationCache>> shards(
      static_cast<std::size_t>(cluster_.size()));
  std::vector<pipeline::ActivationRecorder*> recorders(
      static_cast<std::size_t>(cluster_.size()), nullptr);
  if (cache_phase) {
    for (int r : alive) {
      // Multi-process: each process materialises shards only for the ranks
      // it hosts; remote ranks' shards live in their own processes.
      if (!cluster_.rank_is_local(r)) continue;
      cache::CacheConfig cc;
      cc.num_blocks = blocks_per_sample;
      cc.disk_backed = config_.cache_disk_backed;
      cc.dtype = config_.cache_dtype;
      if (cc.disk_backed) {
        PAC_CHECK(!config_.cache_directory.empty(),
                  "disk-backed cache needs cache_directory");
        cc.directory =
            config_.cache_directory + "/device_" + std::to_string(r);
      }
      cc.ledger = &cluster_.ledger(r);
      shards[static_cast<std::size_t>(r)] =
          std::make_unique<cache::ActivationCache>(cc);
      recorders[static_cast<std::size_t>(r)] =
          shards[static_cast<std::size_t>(r)].get();
    }
  }

  {
    pipeline::RunConfig run;
    run.plan = report.plan.plan;
    run.schedule = config_.schedule;
    run.allreduce = config_.allreduce;
    run.async_comm = config_.async_comm;
    run.allreduce_bucket_bytes = config_.allreduce_bucket_bytes;
    run.batch_size = config_.batch_size;
    run.epochs = cache_phase ? 1 : config_.epochs;
    run.lr = config_.lr;
    run.shuffle_seed = config_.shuffle_seed;
    run.run_eval = config_.run_eval && !cache_phase;
    // Straggler watchdog: ranks compare within their stage's device group
    // (same per-row work); the remaining-budget monitor guarantees the
    // session never re-plans more than elastic.max_replans times.
    std::unique_ptr<elastic::HealthMonitor> monitor;
    const int verdict_budget = config_.elastic.max_replans - replans_used_;
    if (config_.elastic.enabled && verdict_budget > 0) {
      monitor = std::make_unique<elastic::HealthMonitor>(
          config_.elastic, cluster_.size(), verdict_budget);
      std::vector<std::vector<int>> groups;
      for (const auto& st : report.plan.plan.stages) {
        groups.push_back(st.devices);
      }
      monitor->set_groups(std::move(groups));
      run.health = monitor.get();
    }
    // A death here propagates to run(): phase 1 restarts from scratch on
    // the survivors (its partially-recorded cache shards would have to be
    // re-recorded anyway), which reproduces a fault-free survivors run
    // bit-for-bit.  A straggler verdict propagates the same way and
    // restarts under the re-planned schedule.
    report.phase1 = pipeline::run_training(
        cluster_, dataset_, make_factory(nullptr), run,
        cache_phase ? &recorders : nullptr);
  }
  report.epoch_losses = report.phase1.epoch_losses;

  if (!cache_phase) {
    report.eval_metric = report.phase1.eval_metric;
    report.total_seconds = total_timer.seconds();
    return report;
  }

  // ---- step 5a: redistribute cache shards + adapter parameters ----
  check_cancelled();
  auto target = cache::modulo_sharding_over(alive);
  auto run_redistribution = [&](const std::vector<int>& group,
                                const std::function<int(std::int64_t)>& t) {
    WallTimer t_redist;
    std::mutex stats_mutex;
    cluster_.run([&](dist::DeviceContext& ctx) {
      cache::RedistStats stats = cache::redistribute_cache(
          ctx, *shards[static_cast<std::size_t>(ctx.rank)], t, group);
      std::lock_guard<std::mutex> stats_guard(stats_mutex);
      report.redistribution.items_sent += stats.items_sent;
      report.redistribution.items_received += stats.items_received;
      report.redistribution.payload_bytes_sent += stats.payload_bytes_sent;
    });
    report.redistribution_seconds += t_redist.seconds();
  };
  run_redistribution(alive, target);
  for (const auto& shard : shards) {
    if (shard != nullptr) report.cache_bytes_total += shard->total_bytes();
  }

  // ---- step 5b: cached data-parallel epochs (with death recovery) ----
  {
    std::vector<std::vector<std::int64_t>> assignments(
        static_cast<std::size_t>(cluster_.size()));
    for (std::int64_t s = 0; s < dataset_.train_size(); ++s) {
      assignments[static_cast<std::size_t>(target(s))].push_back(s);
    }
    std::vector<const pipeline::ActivationSource*> sources;
    for (const auto& shard : shards) sources.push_back(shard.get());

    // Epoch-boundary snapshots make a mid-phase death recoverable: resume
    // from the last committed epoch instead of replaying phase 2.
    pipeline::RecoveryLog recovery;
    std::map<std::string, Tensor> start_params =
        report.phase1.trainable_values;

    pipeline::CachedRunConfig run;
    run.device_batch_size = std::max<std::int64_t>(
        1, config_.batch_size / cluster_.num_alive());
    run.lr = config_.lr;
    run.allreduce = config_.allreduce;
    run.prefetch = config_.async_comm && config_.cache_prefetch;
    run.shuffle_seed = config_.shuffle_seed + 991;
    run.run_eval = config_.run_eval;
    run.recovery = &recovery;

    // Rebuilds per-rank sample assignments and restores adapter params
    // from the last committed epoch, after `new_target` re-sharded.
    auto rebuild_assignments = [&](
        const std::function<int(std::int64_t)>& new_target) {
      for (auto& a : assignments) a.clear();
      for (std::int64_t s = 0; s < dataset_.train_size(); ++s) {
        assignments[static_cast<std::size_t>(new_target(s))].push_back(s);
      }
      if (recovery.has_restore_point()) {
        for (auto& [name, value] : recovery.restore_point()) {
          start_params[name] = value;
        }
      }
    };

    // Shrinks the DP group after `dead` died: salvage its shard (modelling
    // a re-read of the disk-persisted cache), re-shard over the survivors
    // through the normal redistribution path, and restore adapter params
    // from the last committed epoch.
    auto shrink_after_death = [&](int dead) {
      const std::vector<int> now_alive = cluster_.alive_ranks();
      auto new_target = cache::modulo_sharding_over(now_alive);
      // Salvage destination for blocks whose new owner is remote: the
      // lowest surviving local rank holds them until the redistribution
      // below ships them to their real owners.
      int fallback = -1;
      for (int r : now_alive) {
        if (cluster_.rank_is_local(r)) {
          fallback = r;
          break;
        }
      }
      PAC_CHECK(fallback >= 0, "no local survivor to salvage into");
      auto& dead_shard = shards[static_cast<std::size_t>(dead)];
      if (dead_shard != nullptr) {
        for (const auto& [sample, block] : dead_shard->held_blocks()) {
          int dest = new_target(sample);
          if (!cluster_.rank_is_local(dest)) dest = fallback;
          // Move the stored representation: lossless for compressed shards
          // (no requantization) and bit-exact for fp32 ones.
          shards[static_cast<std::size_t>(dest)]->put_block_q(
              sample, block, dead_shard->get_block_q(sample, block));
        }
        dead_shard.reset();
        sources[static_cast<std::size_t>(dead)] = nullptr;
      } else if (config_.cache_disk_backed &&
                 cluster_.rank_is_local(now_alive.front())) {
        // The dead rank lived in another process, so its in-memory shard is
        // gone with it — but its flash store survives.  Exactly one process
        // (the one hosting the lowest surviving rank) re-reads the spill
        // files; redistribution then spreads the samples to their owners.
        const std::string dir =
            config_.cache_directory + "/device_" + std::to_string(dead);
        const std::int64_t salvaged =
            shards[static_cast<std::size_t>(now_alive.front())]
                ->absorb_spilled_directory(dir);
        PAC_LOG_INFO << "salvaged " << salvaged
                     << " spilled samples from dead rank " << dead;
      }
      run_redistribution(now_alive, new_target);
      rebuild_assignments(new_target);
    };

    // Elastic re-shard after a phase-2 straggler verdict: every rank keeps
    // a cache share proportional to its observed speed, so the per-step
    // critical path (the slowest device's local steps) shrinks.
    auto reshard_weighted = [&] {
      const std::vector<int> now_alive = cluster_.alive_ranks();
      std::vector<double> weights;
      for (int r : now_alive) {
        const auto it = observed_scale_.find(r);
        weights.push_back(it != observed_scale_.end() ? it->second : 1.0);
      }
      auto new_target = cache::weighted_sharding_over(
          now_alive, weights, dataset_.train_size());
      run_redistribution(now_alive, new_target);
      rebuild_assignments(new_target);
    };

    for (;;) {
      check_cancelled();
      // Fresh watchdog per resume: one DP group of all survivors, budget
      // shrunk by re-plans already spent.
      std::unique_ptr<elastic::HealthMonitor> monitor;
      const int verdict_budget = config_.elastic.max_replans - replans_used_;
      if (config_.elastic.enabled && verdict_budget > 0) {
        monitor = std::make_unique<elastic::HealthMonitor>(
            config_.elastic, cluster_.size(), verdict_budget);
        monitor->set_groups({cluster_.alive_ranks()});
      }
      run.health = monitor.get();
      try {
        run.first_epoch = recovery.epochs_completed();
        run.epochs = (config_.epochs - 1) - run.first_epoch;
        report.phase2 = pipeline::run_cached_data_parallel(
            cluster_, dataset_, make_factory(&start_params), sources,
            assignments, run);
        break;
      } catch (const elastic::StragglerDetectedError& e) {
        if (!absorb_straggler(e.verdict())) throw;
        const auto it = e.verdict().observed_scales.find(e.rank());
        const double scale =
            it != e.verdict().observed_scales.end() ? it->second : 1.0;
        if (scale < config_.elastic.evict_ratio &&
            cluster_.num_alive() > 1) {
          // Slower than the eviction floor: its steps cost more than its
          // compute contributes, so drop it from the DP group entirely.
          // The shard salvage models the disk-persisted cache, exactly as
          // for a death — but this is an eviction, not a death, so the
          // rank-recovery budget is untouched.
          PAC_LOG_WARN << "rank " << e.rank() << " straggling at scale "
                       << scale << " < evict_ratio "
                       << config_.elastic.evict_ratio
                       << "; evicting from phase 2 and resuming from epoch "
                       << recovery.epochs_completed();
          evicted_ranks_.push_back(e.rank());
          cluster_.mark_dead(e.rank());
          shrink_after_death(e.rank());
        } else {
          PAC_LOG_WARN << "rank " << e.rank() << " straggling at scale "
                       << scale << "; re-sharding cache throughput-weighted"
                       << " and resuming from epoch "
                       << recovery.epochs_completed();
          reshard_weighted();
        }
      } catch (const RankDeathError& e) {
        if (!absorb_death(e.rank())) throw;
        PAC_LOG_WARN << "device " << e.rank() << " died in phase 2; "
                     << "resuming from epoch "
                     << recovery.epochs_completed() << " on "
                     << cluster_.num_alive() << " survivors";
        shrink_after_death(e.rank());
      } catch (const PeerDeadError& e) {
        if (!absorb_death(e.rank())) throw;
        PAC_LOG_WARN << "device " << e.rank() << " presumed dead in "
                     << "phase 2; resuming from epoch "
                     << recovery.epochs_completed() << " on "
                     << cluster_.num_alive() << " survivors";
        shrink_after_death(e.rank());
      }
    }
    // The committed log covers every phase-2 epoch, including epochs that
    // ran before a mid-phase death; the last RunResult alone would not.
    report.phase2.epoch_losses = recovery.committed_losses();
  }
  report.rank_deaths = recoveries_used_;
  report.dead_ranks = dead_ranks_seen_;
  report.epoch_losses.insert(report.epoch_losses.end(),
                             report.phase2.epoch_losses.begin(),
                             report.phase2.epoch_losses.end());
  report.eval_metric = report.phase2.eval_metric;
  report.total_seconds = total_timer.seconds();
  return report;
}

}  // namespace pac::core
