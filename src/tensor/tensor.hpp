// Dense fp32 tensor.
//
// Always contiguous row-major.  Storage is shared (copying a Tensor is a
// cheap handle copy); `clone()` deep-copies.  Views are limited to reshapes
// and leading-dimension slices — the only two the training stack needs —
// which keeps every kernel a flat loop over contiguous memory.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pac {

using Shape = std::vector<std::int64_t>;

std::string shape_to_string(const Shape& shape);
std::int64_t shape_numel(const Shape& shape);

class Tensor {
 public:
  // Empty tensor (no storage); defined() returns false.
  Tensor() = default;

  // Uninitialized tensor of the given shape.
  explicit Tensor(Shape shape);

  bool defined() const { return storage_ != nullptr; }
  const Shape& shape() const { return shape_; }
  std::int64_t dim() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t size(std::int64_t d) const;
  std::int64_t numel() const { return numel_; }
  std::uint64_t byte_size() const {
    return static_cast<std::uint64_t>(numel_) * sizeof(float);
  }

  float* data();
  const float* data() const;

  float& at(std::initializer_list<std::int64_t> idx);
  float at(std::initializer_list<std::int64_t> idx) const;

  // ---- factories ----
  static Tensor zeros(Shape shape);
  static Tensor full(Shape shape, float value);
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0F);
  static Tensor uniform(Shape shape, Rng& rng, float lo, float hi);
  static Tensor from_vector(Shape shape, const std::vector<float>& values);

  // ---- views (share storage) ----
  // Same storage, new shape; numel must match.
  Tensor reshape(Shape shape) const;
  // Rows [begin, end) along dimension 0; contiguous, shares storage.
  Tensor slice0(std::int64_t begin, std::int64_t end) const;

  // ---- copies / in-place ----
  Tensor clone() const;
  void copy_from(const Tensor& src);
  void fill(float value);
  void zero() { fill(0.0F); }

  // this += other (same shape).
  void add_(const Tensor& other);
  // this += alpha * other.
  void axpy_(float alpha, const Tensor& other);
  // this *= alpha.
  void scale_(float alpha);

  // Whether two handles alias the same storage (used by tests).
  bool shares_storage(const Tensor& other) const {
    return storage_ == other.storage_;
  }

 private:
  Tensor(std::shared_ptr<std::vector<float>> storage, std::int64_t offset,
         Shape shape);

  void check_defined() const {
    PAC_CHECK(defined(), "operation on undefined tensor");
  }

  std::shared_ptr<std::vector<float>> storage_;
  std::int64_t offset_ = 0;
  Shape shape_;
  std::int64_t numel_ = 0;
};

}  // namespace pac
