#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/thread_pool.hpp"

namespace pac::ops {
namespace {

// Rows of x when the last dimension is treated as the feature axis.
std::int64_t rows_of(const Tensor& x) {
  PAC_CHECK(x.dim() >= 1, "expected tensor with >= 1 dim");
  return x.numel() / x.size(x.dim() - 1);
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

// Minimum elements per chunk when threading row-wise / elementwise ops; below
// this the dispatch overhead dominates and the op runs inline.
constexpr std::int64_t kRowOpGrainElems = 1 << 14;

std::int64_t row_grain(std::int64_t cols) {
  return std::max<std::int64_t>(
      1, kRowOpGrainElems / std::max<std::int64_t>(1, cols));
}

struct MatView {
  const Tensor* t;
  std::int64_t rows;
  std::int64_t cols;
};

MatView as_2d(const Tensor& t) {
  PAC_CHECK(t.dim() >= 2, "matmul operand must have >= 2 dims, got "
                              << shape_to_string(t.shape()));
  const std::int64_t cols = t.size(t.dim() - 1);
  return MatView{&t, t.numel() / cols, cols};
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  const MatView av = as_2d(a);
  const MatView bv = as_2d(b);
  PAC_CHECK(av.cols == bv.rows, "matmul: " << shape_to_string(a.shape())
                                           << " @ "
                                           << shape_to_string(b.shape()));
  Tensor c({av.rows, bv.cols});
  gemm_raw(a.data(), b.data(), c.data(), av.rows, bv.cols, av.cols, false,
           false, 1.0F, 0.0F);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  const MatView av = as_2d(a);
  const MatView bv = as_2d(b);
  PAC_CHECK(av.cols == bv.cols, "matmul_nt: " << shape_to_string(a.shape())
                                              << " @ "
                                              << shape_to_string(b.shape())
                                              << "^T");
  Tensor c({av.rows, bv.rows});
  gemm_raw(a.data(), b.data(), c.data(), av.rows, bv.rows, av.cols, false,
           true, 1.0F, 0.0F);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  const MatView av = as_2d(a);
  const MatView bv = as_2d(b);
  PAC_CHECK(av.rows == bv.rows, "matmul_tn: " << shape_to_string(a.shape())
                                              << "^T @ "
                                              << shape_to_string(b.shape()));
  Tensor c({av.cols, bv.cols});
  gemm_raw(a.data(), b.data(), c.data(), av.cols, bv.cols, av.rows, true,
           false, 1.0F, 0.0F);
  return c;
}

void matmul_acc(Tensor& c, const Tensor& a, const Tensor& b, bool trans_a,
                bool trans_b, float alpha) {
  const MatView av = as_2d(a);
  const MatView bv = as_2d(b);
  const std::int64_t m = trans_a ? av.cols : av.rows;
  const std::int64_t k = trans_a ? av.rows : av.cols;
  const std::int64_t kb = trans_b ? bv.cols : bv.rows;
  const std::int64_t n = trans_b ? bv.rows : bv.cols;
  PAC_CHECK(k == kb, "matmul_acc inner dim mismatch: " << k << " vs " << kb);
  const MatView cv = as_2d(c);
  PAC_CHECK(cv.rows == m && cv.cols == n,
            "matmul_acc output shape mismatch: got "
                << shape_to_string(c.shape()) << ", want " << m << "x" << n);
  gemm_raw(a.data(), b.data(), c.data(), m, n, k, trans_a, trans_b, alpha,
           1.0F);
}

namespace {

template <typename F>
Tensor binary_op(const Tensor& a, const Tensor& b, F f, const char* name) {
  PAC_CHECK(a.numel() == b.numel(), name << ": numel mismatch " << a.numel()
                                         << " vs " << b.numel());
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  ThreadPool::global().parallel_for(
      a.numel(),
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) po[i] = f(pa[i], pb[i]);
      },
      kRowOpGrainElems);
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x + y; }, "add");
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x - y; }, "sub");
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x * y; }, "mul");
}

Tensor scale(const Tensor& a, float alpha) {
  Tensor out = a.clone();
  out.scale_(alpha);
  return out;
}

Tensor add_bias(const Tensor& x, const Tensor& bias) {
  const std::int64_t cols = x.size(x.dim() - 1);
  PAC_CHECK(bias.numel() == cols, "add_bias: bias numel " << bias.numel()
                                                          << " vs cols "
                                                          << cols);
  Tensor out(x.shape());
  const std::int64_t rows = rows_of(x);
  const float* px = x.data();
  const float* pb = bias.data();
  float* po = out.data();
  ThreadPool::global().parallel_for(
      rows,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t r = begin; r < end; ++r) {
          const float* xr = px + r * cols;
          float* yr = po + r * cols;
          for (std::int64_t j = 0; j < cols; ++j) yr[j] = xr[j] + pb[j];
        }
      },
      row_grain(cols));
  return out;
}

void bias_grad_acc(Tensor& grad_bias, const Tensor& dy) {
  const std::int64_t cols = grad_bias.numel();
  PAC_CHECK(dy.numel() % cols == 0, "bias_grad_acc: dy numel " << dy.numel()
                                                               << " vs bias "
                                                               << cols);
  const std::int64_t rows = dy.numel() / cols;
  const float* pd = dy.data();
  float* pg = grad_bias.data();
  // Threads split the *column* axis so each output element has one writer
  // and a fixed row-ascending accumulation order.
  ThreadPool::global().parallel_for(
      cols,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t r = 0; r < rows; ++r) {
          const float* drow = pd + r * cols;
          for (std::int64_t j = begin; j < end; ++j) pg[j] += drow[j];
        }
      },
      row_grain(rows));
}

Tensor relu(const Tensor& x) {
  Tensor out(x.shape());
  const float* px = x.data();
  float* po = out.data();
  ThreadPool::global().parallel_for(
      x.numel(),
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          po[i] = px[i] > 0.0F ? px[i] : 0.0F;
        }
      },
      kRowOpGrainElems);
  return out;
}

Tensor relu_backward(const Tensor& dy, const Tensor& x) {
  PAC_CHECK(dy.numel() == x.numel(), "relu_backward numel mismatch");
  Tensor dx(x.shape());
  const float* pd = dy.data();
  const float* px = x.data();
  float* po = dx.data();
  ThreadPool::global().parallel_for(
      x.numel(),
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          po[i] = px[i] > 0.0F ? pd[i] : 0.0F;
        }
      },
      kRowOpGrainElems);
  return dx;
}

namespace {

// tanh-approximation GELU and its derivative.
constexpr float kGeluC = 0.7978845608028654F;  // sqrt(2/pi)

float gelu_scalar(float x) {
  const float u = kGeluC * (x + 0.044715F * x * x * x);
  return 0.5F * x * (1.0F + std::tanh(u));
}

float gelu_grad_scalar(float x) {
  const float x3 = x * x * x;
  const float u = kGeluC * (x + 0.044715F * x3);
  const float t = std::tanh(u);
  const float du = kGeluC * (1.0F + 3.0F * 0.044715F * x * x);
  return 0.5F * (1.0F + t) + 0.5F * x * (1.0F - t * t) * du;
}

// tanh makes GELU much heavier per element than the other elementwise ops.
constexpr std::int64_t kGeluGrainElems = 1 << 12;

}  // namespace

Tensor gelu(const Tensor& x) {
  Tensor out(x.shape());
  const float* px = x.data();
  float* po = out.data();
  ThreadPool::global().parallel_for(
      x.numel(),
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) po[i] = gelu_scalar(px[i]);
      },
      kGeluGrainElems);
  return out;
}

Tensor gelu_backward(const Tensor& dy, const Tensor& x) {
  PAC_CHECK(dy.numel() == x.numel(), "gelu_backward numel mismatch");
  Tensor dx(x.shape());
  const float* pd = dy.data();
  const float* px = x.data();
  float* po = dx.data();
  ThreadPool::global().parallel_for(
      x.numel(),
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          po[i] = pd[i] * gelu_grad_scalar(px[i]);
        }
      },
      kGeluGrainElems);
  return dx;
}

Tensor softmax_lastdim(const Tensor& x) {
  const std::int64_t cols = x.size(x.dim() - 1);
  const std::int64_t rows = rows_of(x);
  Tensor out(x.shape());
  const float* px = x.data();
  float* po = out.data();
  ThreadPool::global().parallel_for(
      rows,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t r = begin; r < end; ++r) {
          const float* xr = px + r * cols;
          float* yr = po + r * cols;
          float mx = xr[0];
          for (std::int64_t j = 1; j < cols; ++j) mx = std::max(mx, xr[j]);
          float z = 0.0F;
          for (std::int64_t j = 0; j < cols; ++j) {
            yr[j] = std::exp(xr[j] - mx);
            z += yr[j];
          }
          const float inv = 1.0F / z;
          for (std::int64_t j = 0; j < cols; ++j) yr[j] *= inv;
        }
      },
      row_grain(cols));
  return out;
}

Tensor softmax_backward(const Tensor& dy, const Tensor& y) {
  PAC_CHECK(dy.numel() == y.numel(), "softmax_backward numel mismatch");
  const std::int64_t cols = y.size(y.dim() - 1);
  const std::int64_t rows = rows_of(y);
  Tensor dx(y.shape());
  const float* pd = dy.data();
  const float* py = y.data();
  float* po = dx.data();
  ThreadPool::global().parallel_for(
      rows,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t r = begin; r < end; ++r) {
          const float* dr = pd + r * cols;
          const float* yr = py + r * cols;
          float* or_ = po + r * cols;
          float dot = 0.0F;
          for (std::int64_t j = 0; j < cols; ++j) dot += dr[j] * yr[j];
          for (std::int64_t j = 0; j < cols; ++j) {
            or_[j] = yr[j] * (dr[j] - dot);
          }
        }
      },
      row_grain(cols));
  return dx;
}

void attention_masked_softmax(Tensor& scores, std::int64_t b, std::int64_t nh,
                              std::int64_t t, std::int64_t s, bool causal,
                              const Tensor* key_mask) {
  PAC_CHECK(scores.numel() == b * nh * t * s,
            "attention_masked_softmax: scores numel "
                << scores.numel() << " vs " << b << "*" << nh << "*" << t
                << "*" << s);
  if (key_mask != nullptr) {
    PAC_CHECK(key_mask->numel() == b * s,
              "key mask must be [B, S] = [" << b << ", " << s << "]");
  }
  float* ps = scores.data();
  const float* pm = key_mask != nullptr ? key_mask->data() : nullptr;
  const std::int64_t rows = b * nh * t;
  const float uniform = 1.0F / static_cast<float>(s);
  ThreadPool::global().parallel_for(
      rows,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t row = begin; row < end; ++row) {
          const std::int64_t bi = row / (nh * t);
          const std::int64_t r = row % t;
          float* x = ps + row * s;
          const float* mrow = pm != nullptr ? pm + bi * s : nullptr;
          const std::int64_t limit =
              causal ? std::min<std::int64_t>(s, r + 1) : s;
          float mx = 0.0F;
          bool any = false;
          for (std::int64_t j = 0; j < limit; ++j) {
            if (mrow != nullptr && mrow[j] == 0.0F) continue;
            mx = any ? std::max(mx, x[j]) : x[j];
            any = true;
          }
          if (!any) {
            // Every position masked out: the unfused path softmaxed a row of
            // equal -1e30 scores, i.e. uniform attention.  Preserve that.
            std::fill_n(x, s, uniform);
            continue;
          }
          float z = 0.0F;
          for (std::int64_t j = 0; j < limit; ++j) {
            if (mrow != nullptr && mrow[j] == 0.0F) {
              x[j] = 0.0F;
            } else {
              x[j] = std::exp(x[j] - mx);
              z += x[j];
            }
          }
          for (std::int64_t j = limit; j < s; ++j) x[j] = 0.0F;
          const float inv = 1.0F / z;
          for (std::int64_t j = 0; j < limit; ++j) x[j] *= inv;
        }
      },
      row_grain(s));
}

Tensor layernorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps, LayerNormContext* ctx) {
  const std::int64_t cols = x.size(x.dim() - 1);
  PAC_CHECK(gamma.numel() == cols && beta.numel() == cols,
            "layernorm affine params must match feature dim " << cols);
  const std::int64_t rows = rows_of(x);
  Tensor out(x.shape());
  Tensor mean({rows});
  Tensor rstd({rows});
  const float* px = x.data();
  const float* pg = gamma.data();
  const float* pb = beta.data();
  float* po = out.data();
  float* pm = mean.data();
  float* pr = rstd.data();
  ThreadPool::global().parallel_for(
      rows,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t r = begin; r < end; ++r) {
          const float* xr = px + r * cols;
          float m = 0.0F;
          for (std::int64_t j = 0; j < cols; ++j) m += xr[j];
          m /= static_cast<float>(cols);
          float var = 0.0F;
          for (std::int64_t j = 0; j < cols; ++j) {
            const float d = xr[j] - m;
            var += d * d;
          }
          var /= static_cast<float>(cols);
          const float rs = 1.0F / std::sqrt(var + eps);
          pm[r] = m;
          pr[r] = rs;
          float* yr = po + r * cols;
          for (std::int64_t j = 0; j < cols; ++j) {
            yr[j] = (xr[j] - m) * rs * pg[j] + pb[j];
          }
        }
      },
      row_grain(cols));
  if (ctx != nullptr) {
    ctx->mean = std::move(mean);
    ctx->rstd = std::move(rstd);
    ctx->input = x;
  }
  return out;
}

Tensor layernorm_backward(const Tensor& dy, const Tensor& gamma,
                          const LayerNormContext& ctx, Tensor& dgamma,
                          Tensor& dbeta) {
  const Tensor& x = ctx.input;
  const std::int64_t cols = x.size(x.dim() - 1);
  const std::int64_t rows = rows_of(x);
  PAC_CHECK(dy.numel() == x.numel(), "layernorm_backward numel mismatch");
  PAC_CHECK(dgamma.numel() == cols && dbeta.numel() == cols,
            "layernorm_backward grad buffers must match feature dim");
  Tensor dx(x.shape());
  const float* pd = dy.data();
  const float* px = x.data();
  const float* pg = gamma.data();
  const float* pm = ctx.mean.data();
  const float* pr = ctx.rstd.data();
  float* pdx = dx.data();
  float* pdg = dgamma.data();
  float* pdb = dbeta.data();
  const float inv_cols = 1.0F / static_cast<float>(cols);

  // dx rows are independent, but dgamma/dbeta reduce over rows.  Each chunk
  // accumulates into its own buffers; the chunk partials are then summed in
  // fixed chunk order, so the result is deterministic for a fixed pool
  // width.
  auto row_body = [&](std::int64_t begin, std::int64_t end, float* ldg,
                      float* ldb) {
    for (std::int64_t r = begin; r < end; ++r) {
      const float* dr = pd + r * cols;
      const float* xr = px + r * cols;
      float* oxr = pdx + r * cols;
      const float m = pm[r];
      const float rs = pr[r];
      // xhat = (x - m) * rs; dxhat = dy * gamma
      float sum_dxhat = 0.0F;
      float sum_dxhat_xhat = 0.0F;
      for (std::int64_t j = 0; j < cols; ++j) {
        const float xhat = (xr[j] - m) * rs;
        const float dxhat = dr[j] * pg[j];
        sum_dxhat += dxhat;
        sum_dxhat_xhat += dxhat * xhat;
        ldg[j] += dr[j] * xhat;
        ldb[j] += dr[j];
      }
      for (std::int64_t j = 0; j < cols; ++j) {
        const float xhat = (xr[j] - m) * rs;
        const float dxhat = dr[j] * pg[j];
        oxr[j] = rs * (dxhat - inv_cols * sum_dxhat -
                       inv_cols * xhat * sum_dxhat_xhat);
      }
    }
  };

  auto& pool = ThreadPool::global();
  const std::int64_t grain = row_grain(cols);
  const auto width = static_cast<std::int64_t>(pool.width());
  if (width == 1 || rows < 2 * grain || pool.on_worker_thread()) {
    row_body(0, rows, pdg, pdb);
    return dx;
  }
  const std::int64_t nchunks =
      std::min<std::int64_t>(width, ceil_div(rows, grain));
  const std::int64_t per_chunk = ceil_div(rows, nchunks);
  std::vector<float> partials(
      static_cast<std::size_t>(nchunks * 2 * cols), 0.0F);
  pool.parallel_for(
      nchunks,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t chunk = begin; chunk < end; ++chunk) {
          const std::int64_t r0 = chunk * per_chunk;
          const std::int64_t r1 =
              std::min<std::int64_t>(rows, r0 + per_chunk);
          float* ldg = partials.data() + chunk * 2 * cols;
          row_body(r0, r1, ldg, ldg + cols);
        }
      },
      /*grain=*/1);
  for (std::int64_t chunk = 0; chunk < nchunks; ++chunk) {
    const float* ldg = partials.data() + chunk * 2 * cols;
    for (std::int64_t j = 0; j < cols; ++j) {
      pdg[j] += ldg[j];
      pdb[j] += ldg[cols + j];
    }
  }
  return dx;
}

Tensor embedding(const Tensor& table, const Tensor& ids) {
  PAC_CHECK(table.dim() == 2, "embedding table must be 2-D");
  const std::int64_t vocab = table.size(0);
  const std::int64_t h = table.size(1);
  Shape out_shape = ids.shape();
  out_shape.push_back(h);
  Tensor out(out_shape);
  const float* pt = table.data();
  const float* pi = ids.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < ids.numel(); ++i) {
    const std::int64_t id = static_cast<std::int64_t>(pi[i]);
    PAC_CHECK(id >= 0 && id < vocab, "token id " << id << " out of vocab "
                                                 << vocab);
    std::copy_n(pt + id * h, h, po + i * h);
  }
  return out;
}

void embedding_backward_acc(Tensor& grad_table, const Tensor& ids,
                            const Tensor& dy) {
  PAC_CHECK(grad_table.dim() == 2, "embedding grad table must be 2-D");
  const std::int64_t vocab = grad_table.size(0);
  const std::int64_t h = grad_table.size(1);
  PAC_CHECK(dy.numel() == ids.numel() * h, "embedding_backward size mismatch");
  float* pg = grad_table.data();
  const float* pi = ids.data();
  const float* pd = dy.data();
  for (std::int64_t i = 0; i < ids.numel(); ++i) {
    const std::int64_t id = static_cast<std::int64_t>(pi[i]);
    PAC_CHECK(id >= 0 && id < vocab, "token id " << id << " out of vocab "
                                                 << vocab);
    float* row = pg + id * h;
    const float* drow = pd + i * h;
    for (std::int64_t j = 0; j < h; ++j) row[j] += drow[j];
  }
}

float sum(const Tensor& x) {
  const float* p = x.data();
  double acc = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) acc += p[i];
  return static_cast<float>(acc);
}

float mean(const Tensor& x) {
  PAC_CHECK(x.numel() > 0, "mean of empty tensor");
  return sum(x) / static_cast<float>(x.numel());
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  PAC_CHECK(a.numel() == b.numel(), "max_abs_diff numel mismatch");
  const float* pa = a.data();
  const float* pb = b.data();
  float mx = 0.0F;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    mx = std::max(mx, std::abs(pa[i] - pb[i]));
  }
  return mx;
}

Tensor transpose_2d(const Tensor& x) {
  PAC_CHECK(x.dim() == 2, "transpose_2d needs a 2-D tensor");
  const std::int64_t r = x.size(0);
  const std::int64_t c = x.size(1);
  Tensor out({c, r});
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < r; ++i) {
    for (std::int64_t j = 0; j < c; ++j) po[j * r + i] = px[i * c + j];
  }
  return out;
}

Tensor mean_over_dim1(const Tensor& x) {
  PAC_CHECK(x.dim() == 3, "mean_over_dim1 needs [B, T, H]");
  const std::int64_t b = x.size(0);
  const std::int64_t t = x.size(1);
  const std::int64_t h = x.size(2);
  Tensor out = Tensor::zeros({b, h});
  const float* px = x.data();
  float* po = out.data();
  const float inv = 1.0F / static_cast<float>(t);
  for (std::int64_t i = 0; i < b; ++i) {
    for (std::int64_t s = 0; s < t; ++s) {
      const float* row = px + (i * t + s) * h;
      float* orow = po + i * h;
      for (std::int64_t j = 0; j < h; ++j) orow[j] += row[j] * inv;
    }
  }
  return out;
}

Tensor masked_mean_over_dim1(const Tensor& x, const Tensor& mask) {
  PAC_CHECK(x.dim() == 3, "masked_mean_over_dim1 needs [B, T, H]");
  const std::int64_t b = x.size(0);
  const std::int64_t t = x.size(1);
  const std::int64_t h = x.size(2);
  PAC_CHECK(mask.numel() == b * t, "mask must be [B, T]");
  Tensor out = Tensor::zeros({b, h});
  const float* px = x.data();
  const float* pm = mask.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < b; ++i) {
    float count = 0.0F;
    for (std::int64_t s = 0; s < t; ++s) count += pm[i * t + s];
    if (count == 0.0F) continue;
    const float inv = 1.0F / count;
    for (std::int64_t s = 0; s < t; ++s) {
      if (pm[i * t + s] == 0.0F) continue;
      const float* row = px + (i * t + s) * h;
      float* orow = po + i * h;
      for (std::int64_t j = 0; j < h; ++j) orow[j] += row[j] * inv;
    }
  }
  return out;
}

Tensor masked_mean_over_dim1_backward(const Tensor& dy, const Tensor& mask) {
  PAC_CHECK(dy.dim() == 2, "masked_mean_over_dim1_backward needs [B, H]");
  const std::int64_t b = dy.size(0);
  const std::int64_t h = dy.size(1);
  PAC_CHECK(mask.dim() == 2 && mask.size(0) == b, "mask must be [B, T]");
  const std::int64_t t = mask.size(1);
  Tensor dx = Tensor::zeros({b, t, h});
  const float* pd = dy.data();
  const float* pm = mask.data();
  float* po = dx.data();
  for (std::int64_t i = 0; i < b; ++i) {
    float count = 0.0F;
    for (std::int64_t s = 0; s < t; ++s) count += pm[i * t + s];
    if (count == 0.0F) continue;
    const float inv = 1.0F / count;
    for (std::int64_t s = 0; s < t; ++s) {
      if (pm[i * t + s] == 0.0F) continue;
      float* row = po + (i * t + s) * h;
      const float* drow = pd + i * h;
      for (std::int64_t j = 0; j < h; ++j) row[j] = drow[j] * inv;
    }
  }
  return dx;
}

Tensor mean_over_dim1_backward(const Tensor& dy, std::int64_t t) {
  PAC_CHECK(dy.dim() == 2, "mean_over_dim1_backward needs [B, H]");
  const std::int64_t b = dy.size(0);
  const std::int64_t h = dy.size(1);
  Tensor dx({b, t, h});
  const float* pd = dy.data();
  float* po = dx.data();
  const float inv = 1.0F / static_cast<float>(t);
  for (std::int64_t i = 0; i < b; ++i) {
    for (std::int64_t s = 0; s < t; ++s) {
      float* row = po + (i * t + s) * h;
      const float* drow = pd + i * h;
      for (std::int64_t j = 0; j < h; ++j) row[j] = drow[j] * inv;
    }
  }
  return dx;
}

}  // namespace pac::ops
