// Tensor kernels.
//
// All kernels operate on 2-D (or flattened) contiguous fp32 buffers.  Higher
// layers (nn modules) reshape [B, T, H] activations to [B*T, H] before
// calling in here.
//
// GEMM is cache-blocked and panel-packed (Mc/Kc/Nc blocking with an Mr x Nr
// register micro-kernel over contiguous packed panels; see DESIGN.md
// "Kernel architecture") and parallelizes over row blocks via the global
// ThreadPool.  gemm_batched additionally parallelizes across the batch
// dimension, which is what the attention head loops use.  Row-wise ops
// (softmax, layernorm, activations, bias) thread over rows behind a size
// threshold.  All kernels keep a fixed per-element accumulation order, so
// results are bit-deterministic for a fixed thread count.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace pac::ops {

// ---------------------------------------------------------------------------
// GEMM: C = alpha * op(A) @ op(B) + beta * C
//   op(A) is [m, k], op(B) is [k, n], C is [m, n].
// ---------------------------------------------------------------------------
void gemm_raw(const float* a, const float* b, float* c, std::int64_t m,
              std::int64_t n, std::int64_t k, bool trans_a, bool trans_b,
              float alpha, float beta);

// Batched GEMM over `batch` independent problems of identical shape:
//   C_i = alpha * op(A_i) @ op(B_i) + beta * C_i
// where A_i = a + i * stride_a (and likewise for b, c).  Parallelizes across
// the batch dimension (each problem runs single-threaded inside), which is
// the right split for attention's many-small-GEMM head loops.
void gemm_batched(const float* a, const float* b, float* c, std::int64_t batch,
                  std::int64_t m, std::int64_t n, std::int64_t k,
                  std::int64_t stride_a, std::int64_t stride_b,
                  std::int64_t stride_c, bool trans_a, bool trans_b,
                  float alpha, float beta);

// C = A[m,k] @ B[k,n]
Tensor matmul(const Tensor& a, const Tensor& b);
// C = A[m,k] @ B[n,k]^T
Tensor matmul_nt(const Tensor& a, const Tensor& b);
// C = A[k,m]^T @ B[k,n]
Tensor matmul_tn(const Tensor& a, const Tensor& b);
// C += alpha * op(A) @ op(B); shapes must already agree.
void matmul_acc(Tensor& c, const Tensor& a, const Tensor& b, bool trans_a,
                bool trans_b, float alpha);

// ---------------------------------------------------------------------------
// Elementwise / broadcast
// ---------------------------------------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float alpha);

// y[r, :] = x[r, :] + bias (bias has size = last dim of x).
Tensor add_bias(const Tensor& x, const Tensor& bias);
// grad_bias[j] = sum_r dy[r, j]; dy viewed as [rows, bias.numel()].
void bias_grad_acc(Tensor& grad_bias, const Tensor& dy);

// ---------------------------------------------------------------------------
// Activations
// ---------------------------------------------------------------------------
Tensor relu(const Tensor& x);
// dx = dy * (x > 0)
Tensor relu_backward(const Tensor& dy, const Tensor& x);
Tensor gelu(const Tensor& x);
Tensor gelu_backward(const Tensor& dy, const Tensor& x);

// ---------------------------------------------------------------------------
// Softmax over the last dimension.
// ---------------------------------------------------------------------------
Tensor softmax_lastdim(const Tensor& x);
// dx given y = softmax(x) and dy:  dx = y * (dy - sum(dy * y)).
Tensor softmax_backward(const Tensor& dy, const Tensor& y);

// Fused masked softmax for attention scores, in place.  `scores` is
// [B, nh, T, S]; rows are softmaxed over the last dim with masking applied
// during the same pass (no separate mask write + full-width softmax):
//   - causal: column j of query row r participates only when j <= r;
//   - key_mask (optional, [B, S], 0 = masked): masked keys are excluded.
// Excluded positions end up with probability exactly 0.  A row with no
// admissible position degrades to uniform 1/S — the same result the unfused
// path produced for an all--1e30 row — so downstream numerics are unchanged.
void attention_masked_softmax(Tensor& scores, std::int64_t b, std::int64_t nh,
                              std::int64_t t, std::int64_t s, bool causal,
                              const Tensor* key_mask);

// ---------------------------------------------------------------------------
// LayerNorm over the last dimension.
// ---------------------------------------------------------------------------
struct LayerNormContext {
  Tensor mean;   // [rows]
  Tensor rstd;   // [rows]
  Tensor input;  // saved x for backward
};

Tensor layernorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps, LayerNormContext* ctx);
// Returns dx; accumulates dgamma / dbeta.
Tensor layernorm_backward(const Tensor& dy, const Tensor& gamma,
                          const LayerNormContext& ctx, Tensor& dgamma,
                          Tensor& dbeta);

// ---------------------------------------------------------------------------
// Embedding lookup: ids are float-encoded integers in a [B, T] tensor
// (the data pipeline produces integer token ids stored as floats).
// ---------------------------------------------------------------------------
Tensor embedding(const Tensor& table, const Tensor& ids);
void embedding_backward_acc(Tensor& grad_table, const Tensor& ids,
                            const Tensor& dy);

// ---------------------------------------------------------------------------
// Reductions / misc
// ---------------------------------------------------------------------------
float sum(const Tensor& x);
float mean(const Tensor& x);
float max_abs_diff(const Tensor& a, const Tensor& b);
Tensor transpose_2d(const Tensor& x);

// Mean over dimension 1 of x[B, T, H] -> [B, H] (pooling for task heads).
Tensor mean_over_dim1(const Tensor& x);
// Backward of mean_over_dim1: dy[B, H] -> dx[B, T, H].
Tensor mean_over_dim1_backward(const Tensor& dy, std::int64_t t);

// Masked mean over dimension 1: rows with mask[b, t] == 0 (padding) are
// excluded from the average.  A fully-masked sample yields zeros.
Tensor masked_mean_over_dim1(const Tensor& x, const Tensor& mask);
Tensor masked_mean_over_dim1_backward(const Tensor& dy, const Tensor& mask);

}  // namespace pac::ops
