#include "tensor/quant.hpp"

#include <cmath>
#include <cstring>

#if defined(__AVX512F__) || defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/error.hpp"

// Like gemm.cpp, this TU is compiled with the host's full SIMD width when
// PAC_NATIVE_KERNELS is on; the kernels below select AVX-512 / AVX2(+F16C)
// / scalar at compile time.  Every vector path must produce bytes identical
// to the scalar one: fp16 uses the hardware RNE conversion whose semantics
// f32_to_f16 replicates exactly, and int8 rounds with the default MXCSR
// round-to-nearest-even that nearbyintf matches.

namespace pac::quant {

const char* dtype_name(Dtype d) {
  switch (d) {
    case Dtype::kF32:
      return "fp32";
    case Dtype::kF16:
      return "fp16";
    case Dtype::kI8:
      return "int8";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// fp16 scalar conversion (IEEE binary16, round-to-nearest-even) — the
// reference semantics; F16C produces the same bits.

std::uint16_t f32_to_f16(float f) {
  std::uint32_t x;
  std::memcpy(&x, &f, 4);
  const std::uint16_t sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
  x &= 0x7FFFFFFFu;
  if (x >= 0x47800000u) {  // |f| >= 65536: overflow, inf, or NaN
    if (x > 0x7F800000u) return sign | 0x7E00u;  // NaN -> quiet half NaN
    return sign | 0x7C00u;                       // +-inf
  }
  if (x < 0x38800000u) {  // |f| < 2^-14: half subnormal or zero
    // Subnormal half mantissa = round(|f| / 2^-24); with the implicit bit
    // restored that is the fp32 mantissa shifted down by 126 - exp.
    const std::uint32_t exp = x >> 23;
    const std::uint32_t shift = 126u - exp;  // bits dropped off the mantissa
    if (shift > 31) return sign;             // too small even to round up
    const std::uint32_t mant = (x & 0x7FFFFFu) | 0x800000u;
    std::uint16_t h = sign | static_cast<std::uint16_t>(mant >> shift);
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t half = 1u << (shift - 1u);
    if (rem > half || (rem == half && (h & 1u))) ++h;
    return h;
  }
  const std::uint32_t mant = x & 0x7FFFFFu;
  const std::uint32_t exp = (x >> 23) - 112u;  // rebias 127 -> 15
  std::uint16_t h = sign | static_cast<std::uint16_t>(exp << 10) |
                    static_cast<std::uint16_t>(mant >> 13);
  const std::uint32_t rem = mant & 0x1FFFu;
  // RNE; a mantissa carry correctly bumps the exponent (up to inf).
  if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ++h;
  return h;
}

float f16_to_f32(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  std::uint32_t exp = (h >> 10) & 0x1Fu;
  std::uint32_t mant = h & 0x3FFu;
  std::uint32_t x;
  if (exp == 0) {
    if (mant == 0) {
      x = sign;
    } else {
      // Normalize the subnormal: shift until the implicit bit appears.
      exp = 1;
      while (!(mant & 0x400u)) {
        mant <<= 1;
        --exp;
      }
      x = sign | ((exp + 112u) << 23) | ((mant & 0x3FFu) << 13);
    }
  } else if (exp == 31) {
    x = sign | 0x7F800000u | (mant << 13);
  } else {
    x = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &x, 4);
  return f;
}

namespace {

// ---------------------------------------------------------------------------
// fp16 bulk conversion

void encode_f16(const float* src, std::uint16_t* dst, std::int64_t n) {
  std::int64_t i = 0;
#if defined(__AVX512F__)
  for (; i + 16 <= n; i += 16) {
    const __m512 v = _mm512_loadu_ps(src + i);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm512_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
  }
#elif defined(__AVX2__) && defined(__F16C__)
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(src + i);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT));
  }
#endif
  for (; i < n; ++i) dst[i] = f32_to_f16(src[i]);
}

void decode_f16(const std::uint16_t* src, float* dst, std::int64_t n) {
  std::int64_t i = 0;
#if defined(__AVX512F__)
  for (; i + 16 <= n; i += 16) {
    const __m256i h =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm512_storeu_ps(dst + i, _mm512_cvtph_ps(h));
  }
#elif defined(__AVX2__) && defined(__F16C__)
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
#endif
  for (; i < n; ++i) dst[i] = f16_to_f32(src[i]);
}

// ---------------------------------------------------------------------------
// int8 symmetric per-row absmax

float row_absmax(const float* src, std::int64_t n) {
  std::int64_t i = 0;
  float result = 0.0F;
#if defined(__AVX512F__)
  if (n >= 16) {
    __m512 acc = _mm512_setzero_ps();
    for (; i + 16 <= n; i += 16) {
      acc = _mm512_max_ps(acc, _mm512_abs_ps(_mm512_loadu_ps(src + i)));
    }
    result = _mm512_reduce_max_ps(acc);
  }
#elif defined(__AVX2__)
  if (n >= 8) {
    const __m256 mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
    __m256 acc = _mm256_setzero_ps();
    for (; i + 8 <= n; i += 8) {
      acc = _mm256_max_ps(acc, _mm256_and_ps(mask, _mm256_loadu_ps(src + i)));
    }
    __m128 m = _mm_max_ps(_mm256_castps256_ps128(acc),
                          _mm256_extractf128_ps(acc, 1));
    m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
    result = _mm_cvtss_f32(m);
  }
#endif
  for (; i < n; ++i) result = std::max(result, std::fabs(src[i]));
  return result;
}

// q = rne(x * inv) clamped to [-127, 127].  `inv` (= 127 / absmax) is a
// per-row constant so the scalar tail and the vector body agree bit-for-bit.
void encode_i8_row(const float* src, std::int8_t* dst, std::int64_t n,
                   float inv) {
  std::int64_t i = 0;
#if defined(__AVX512F__)
  const __m512 vinv = _mm512_set1_ps(inv);
  const __m512i lo = _mm512_set1_epi32(-127);
  const __m512i hi = _mm512_set1_epi32(127);
  for (; i + 16 <= n; i += 16) {
    // cvtps_epi32 rounds with the default MXCSR mode: nearest-even.
    __m512i q = _mm512_cvtps_epi32(
        _mm512_mul_ps(_mm512_loadu_ps(src + i), vinv));
    q = _mm512_max_epi32(_mm512_min_epi32(q, hi), lo);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm512_cvtsepi32_epi8(q));
  }
#elif defined(__AVX2__)
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256i lo = _mm256_set1_epi32(-127);
  const __m256i hi = _mm256_set1_epi32(127);
  for (; i + 8 <= n; i += 8) {
    __m256i q =
        _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(src + i), vinv));
    q = _mm256_max_epi32(_mm256_min_epi32(q, hi), lo);
    const __m128i p16 = _mm_packs_epi32(_mm256_castsi256_si128(q),
                                        _mm256_extracti128_si256(q, 1));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + i),
                     _mm_packs_epi16(p16, p16));
  }
#endif
  for (; i < n; ++i) {
    const float q = std::nearbyintf(src[i] * inv);
    dst[i] = static_cast<std::int8_t>(
        q < -127.0F ? -127.0F : (q > 127.0F ? 127.0F : q));
  }
}

void decode_i8_row(const std::int8_t* src, float* dst, std::int64_t n,
                   float scale) {
  std::int64_t i = 0;
#if defined(__AVX512F__)
  const __m512 vscale = _mm512_set1_ps(scale);
  for (; i + 16 <= n; i += 16) {
    const __m512i q = _mm512_cvtepi8_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i)));
    _mm512_storeu_ps(dst + i,
                     _mm512_mul_ps(_mm512_cvtepi32_ps(q), vscale));
  }
#elif defined(__AVX2__)
  const __m256 vscale = _mm256_set1_ps(scale);
  for (; i + 8 <= n; i += 8) {
    const __m256i q = _mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + i)));
    _mm256_storeu_ps(dst + i,
                     _mm256_mul_ps(_mm256_cvtepi32_ps(q), vscale));
  }
#endif
  for (; i < n; ++i) dst[i] = static_cast<float>(src[i]) * scale;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points

QTensor quantize_rows(const float* src, Shape shape, Dtype dtype) {
  QTensor q;
  q.dtype = dtype;
  q.shape = std::move(shape);
  const std::int64_t n = q.numel();
  PAC_CHECK(n == 0 || src != nullptr, "quantize_rows: null source");
  switch (dtype) {
    case Dtype::kF32: {
      q.data.resize(static_cast<std::size_t>(n) * 4);
      std::memcpy(q.data.data(), src, q.data.size());
      break;
    }
    case Dtype::kF16: {
      q.data.resize(static_cast<std::size_t>(n) * 2);
      encode_f16(src, reinterpret_cast<std::uint16_t*>(q.data.data()), n);
      break;
    }
    case Dtype::kI8: {
      const std::int64_t len = q.row_len();
      const std::int64_t rows = q.rows();
      q.data.resize(static_cast<std::size_t>(n));
      q.scales.resize(static_cast<std::size_t>(rows));
      auto* out = reinterpret_cast<std::int8_t*>(q.data.data());
      for (std::int64_t r = 0; r < rows; ++r) {
        const float* row = src + r * len;
        const float absmax = row_absmax(row, len);
        if (absmax == 0.0F) {
          q.scales[static_cast<std::size_t>(r)] = 0.0F;
          std::memset(out + r * len, 0, static_cast<std::size_t>(len));
          continue;
        }
        q.scales[static_cast<std::size_t>(r)] = absmax / 127.0F;
        encode_i8_row(row, out + r * len, len, 127.0F / absmax);
      }
      break;
    }
  }
  return q;
}

QTensor quantize(const Tensor& t, Dtype dtype) {
  PAC_CHECK(t.defined(), "quantize on undefined tensor");
  return quantize_rows(t.data(), t.shape(), dtype);
}

void dequantize_into(const QTensor& q, float* dst) {
  const std::int64_t n = q.numel();
  if (n == 0) return;
  PAC_CHECK(dst != nullptr, "dequantize_into: null destination");
  switch (q.dtype) {
    case Dtype::kF32: {
      PAC_CHECK(q.data.size() == static_cast<std::size_t>(n) * 4,
                "fp32 qtensor storage does not match its shape");
      std::memcpy(dst, q.data.data(), q.data.size());
      break;
    }
    case Dtype::kF16: {
      PAC_CHECK(q.data.size() == static_cast<std::size_t>(n) * 2,
                "fp16 qtensor storage does not match its shape");
      decode_f16(reinterpret_cast<const std::uint16_t*>(q.data.data()), dst,
                 n);
      break;
    }
    case Dtype::kI8: {
      const std::int64_t len = q.row_len();
      const std::int64_t rows = q.rows();
      PAC_CHECK(q.data.size() == static_cast<std::size_t>(n),
                "int8 qtensor storage does not match its shape");
      PAC_CHECK(q.scales.size() == static_cast<std::size_t>(rows),
                "int8 qtensor needs one scale per row");
      const auto* src = reinterpret_cast<const std::int8_t*>(q.data.data());
      for (std::int64_t r = 0; r < rows; ++r) {
        decode_i8_row(src + r * len, dst + r * len, len,
                      q.scales[static_cast<std::size_t>(r)]);
      }
      break;
    }
  }
}

Tensor dequantize(const QTensor& q) {
  Tensor out(q.shape);
  dequantize_into(q, out.data());
  return out;
}

}  // namespace pac::quant
