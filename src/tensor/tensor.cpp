#include "tensor/tensor.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <sstream>
#include <utility>

namespace pac {

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    PAC_CHECK(d >= 0, "negative dimension in shape " << shape_to_string(shape));
    n *= d;
  }
  return n;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), numel_(shape_numel(shape_)) {
  storage_ = std::make_shared<std::vector<float>>(
      static_cast<std::size_t>(numel_));
}

Tensor::Tensor(std::shared_ptr<std::vector<float>> storage,
               std::int64_t offset, Shape shape)
    : storage_(std::move(storage)),
      offset_(offset),
      shape_(std::move(shape)),
      numel_(shape_numel(shape_)) {
  PAC_CHECK(offset_ + numel_ <=
                static_cast<std::int64_t>(storage_->size()),
            "view exceeds storage");
}

std::int64_t Tensor::size(std::int64_t d) const {
  PAC_CHECK(d >= 0 && d < dim(), "dim " << d << " out of range for "
                                        << shape_to_string(shape_));
  return shape_[static_cast<std::size_t>(d)];
}

float* Tensor::data() {
  check_defined();
  return storage_->data() + offset_;
}

const float* Tensor::data() const {
  check_defined();
  return storage_->data() + offset_;
}

namespace {

std::int64_t flat_index(const Shape& shape,
                        std::initializer_list<std::int64_t> idx) {
  PAC_CHECK(idx.size() == shape.size(),
            "index rank " << idx.size() << " vs tensor rank " << shape.size());
  std::int64_t flat = 0;
  std::size_t d = 0;
  for (std::int64_t i : idx) {
    PAC_CHECK(i >= 0 && i < shape[d], "index " << i << " out of range in dim "
                                               << d << " of "
                                               << shape_to_string(shape));
    flat = flat * shape[d] + i;
    ++d;
  }
  return flat;
}

}  // namespace

float& Tensor::at(std::initializer_list<std::int64_t> idx) {
  check_defined();
  return data()[flat_index(shape_, idx)];
}

float Tensor::at(std::initializer_list<std::int64_t> idx) const {
  check_defined();
  return data()[flat_index(shape_, idx)];
}

Tensor Tensor::zeros(Shape shape) {
  Tensor t(std::move(shape));
  t.fill(0.0F);
  return t;
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) p[i] = rng.normal(0.0F, stddev);
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) p[i] = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::from_vector(Shape shape, const std::vector<float>& values) {
  Tensor t(std::move(shape));
  PAC_CHECK(static_cast<std::int64_t>(values.size()) == t.numel(),
            "from_vector: " << values.size() << " values for shape "
                            << shape_to_string(t.shape()));
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::reshape(Shape shape) const {
  check_defined();
  const std::int64_t n = shape_numel(shape);
  PAC_CHECK(n == numel_, "reshape " << shape_to_string(shape_) << " -> "
                                    << shape_to_string(shape)
                                    << " changes numel");
  return Tensor(storage_, offset_, std::move(shape));
}

Tensor Tensor::slice0(std::int64_t begin, std::int64_t end) const {
  check_defined();
  PAC_CHECK(dim() >= 1, "slice0 on scalar tensor");
  PAC_CHECK(begin >= 0 && begin <= end && end <= shape_[0],
            "slice0 [" << begin << ", " << end << ") out of range for "
                       << shape_to_string(shape_));
  const std::int64_t inner = numel_ / std::max<std::int64_t>(shape_[0], 1);
  Shape new_shape = shape_;
  new_shape[0] = end - begin;
  return Tensor(storage_, offset_ + begin * inner, std::move(new_shape));
}

Tensor Tensor::clone() const {
  check_defined();
  Tensor t(shape_);
  if (numel_ > 0) {
    std::memcpy(t.data(), data(),
                static_cast<std::size_t>(numel_) * sizeof(float));
  }
  return t;
}

void Tensor::copy_from(const Tensor& src) {
  check_defined();
  PAC_CHECK(src.numel() == numel_, "copy_from numel mismatch: "
                                       << src.numel() << " vs " << numel_);
  if (numel_ > 0) {
    std::memcpy(data(), src.data(),
                static_cast<std::size_t>(numel_) * sizeof(float));
  }
}

void Tensor::fill(float value) {
  check_defined();
  std::fill_n(data(), numel_, value);
}

void Tensor::add_(const Tensor& other) { axpy_(1.0F, other); }

void Tensor::axpy_(float alpha, const Tensor& other) {
  check_defined();
  PAC_CHECK(other.numel() == numel_, "axpy_ numel mismatch: " << other.numel()
                                                              << " vs "
                                                              << numel_);
  float* dst = data();
  const float* src = other.data();
  for (std::int64_t i = 0; i < numel_; ++i) dst[i] += alpha * src[i];
}

void Tensor::scale_(float alpha) {
  check_defined();
  float* p = data();
  for (std::int64_t i = 0; i < numel_; ++i) p[i] *= alpha;
}

}  // namespace pac
