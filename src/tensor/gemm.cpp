#include "tensor/ops.hpp"

#include <algorithm>
#include <vector>

#if defined(__AVX512F__) || defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/thread_pool.hpp"

// This translation unit is compiled with the host's full SIMD width
// (-march=native via PAC_NATIVE_KERNELS); the intrinsics micro-kernel below
// selects AVX-512 / AVX2+FMA / scalar at compile time.  The rest of
// src/tensor stays on the project-wide flags: the exp-heavy row ops
// (softmax, gelu) measurably regress when the whole library is built with
// 512-bit autovectorization, so only the GEMM lives here.

namespace pac::ops {
namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

// ---------------------------------------------------------------------------
// GEMM
//
// Cache-blocked, panel-packed SGEMM (see DESIGN.md "Kernel architecture").
// op(A) row blocks of kMc and op(B) column blocks of kNc are packed, one
// depth slice of kKc at a time, into contiguous panels of kMr rows / kNr
// columns; a register micro-kernel accumulates an kMr x kNr tile over the
// packed panels.  Per-element accumulation order is ascending in k
// regardless of blocking or threading, so results are bit-deterministic.
// ---------------------------------------------------------------------------

constexpr std::int64_t kMr = 8;    // micro-tile rows (accumulator rows)
constexpr std::int64_t kNr = 16;   // micro-tile cols (one/two SIMD rows)
constexpr std::int64_t kMc = 128;  // packed A block rows   (A block in L2)
constexpr std::int64_t kKc = 256;  // packed depth per block (B panel in L1)
constexpr std::int64_t kNc = 1024; // packed B block cols    (B block in L2)

// m*n*k below this: the plain ikj loop beats packing overhead.
constexpr std::int64_t kSmallGemmFlops = 8 * 1024;
// m*n*k above this: worth dispatching row blocks on the pool.
constexpr std::int64_t kGemmParallelFlops = 1 << 16;

// Pack op(A)[ic:ic+mb, pc:pc+kb] into panels of kMr rows:
//   dst[(ip * kb + p) * kMr + r] = op(A)(ic + ip*kMr + r, pc + p)
// with zero padding for rows past mb (the micro-kernel always runs a full
// kMr x kNr tile; stores are guarded instead).
void pack_a_block(float* dst, const float* a, std::int64_t m, std::int64_t k,
                  bool trans_a, std::int64_t ic, std::int64_t pc,
                  std::int64_t mb, std::int64_t kb) {
  const std::int64_t panels = ceil_div(mb, kMr);
  for (std::int64_t ip = 0; ip < panels; ++ip) {
    float* pdst = dst + ip * kb * kMr;
    const std::int64_t rows = std::min<std::int64_t>(kMr, mb - ip * kMr);
    if (!trans_a) {
      for (std::int64_t r = 0; r < rows; ++r) {
        const float* src = a + (ic + ip * kMr + r) * k + pc;
        for (std::int64_t p = 0; p < kb; ++p) pdst[p * kMr + r] = src[p];
      }
    } else {
      for (std::int64_t p = 0; p < kb; ++p) {
        const float* src = a + (pc + p) * m + ic + ip * kMr;
        for (std::int64_t r = 0; r < rows; ++r) pdst[p * kMr + r] = src[r];
      }
    }
    if (rows < kMr) {
      for (std::int64_t p = 0; p < kb; ++p) {
        for (std::int64_t r = rows; r < kMr; ++r) pdst[p * kMr + r] = 0.0F;
      }
    }
  }
}

// Pack op(B)[pc:pc+kb, jc:jc+nb] into panels of kNr columns:
//   dst[(jp * kb + p) * kNr + j] = op(B)(pc + p, jc + jp*kNr + j)
// with zero padding for columns past nb.
void pack_b_block(float* dst, const float* b, std::int64_t n, std::int64_t k,
                  bool trans_b, std::int64_t jc, std::int64_t pc,
                  std::int64_t nb, std::int64_t kb) {
  const std::int64_t panels = ceil_div(nb, kNr);
  for (std::int64_t jp = 0; jp < panels; ++jp) {
    float* pdst = dst + jp * kb * kNr;
    const std::int64_t cols = std::min<std::int64_t>(kNr, nb - jp * kNr);
    if (!trans_b) {
      for (std::int64_t p = 0; p < kb; ++p) {
        const float* src = b + (pc + p) * n + jc + jp * kNr;
        float* row = pdst + p * kNr;
        for (std::int64_t j = 0; j < cols; ++j) row[j] = src[j];
        for (std::int64_t j = cols; j < kNr; ++j) row[j] = 0.0F;
      }
    } else {
      for (std::int64_t j = 0; j < cols; ++j) {
        const float* src = b + (jc + jp * kNr + j) * k + pc;
        for (std::int64_t p = 0; p < kb; ++p) pdst[p * kNr + j] = src[p];
      }
      for (std::int64_t p = 0; p < kb; ++p) {
        for (std::int64_t j = cols; j < kNr; ++j) pdst[p * kNr + j] = 0.0F;
      }
    }
  }
}

// acc[kMr x kNr] += Apanel @ Bpanel over kb packed depth steps.  Written
// with explicit SIMD so the accumulator tile provably stays in vector
// registers (autovectorizers spill it); per-element accumulation order is
// k-ascending in every variant, so results stay run-to-run deterministic.
#if defined(__AVX512F__)
inline void micro_kernel(std::int64_t kb, const float* __restrict__ ap,
                         const float* __restrict__ bp,
                         float* __restrict__ acc) {
  static_assert(kNr == 16, "AVX-512 micro-kernel assumes one zmm per row");
  __m512 c[kMr];
  for (std::int64_t r = 0; r < kMr; ++r) c[r] = _mm512_setzero_ps();
  for (std::int64_t p = 0; p < kb; ++p) {
    const __m512 bvec = _mm512_loadu_ps(bp + p * kNr);
    const float* arow = ap + p * kMr;
    for (std::int64_t r = 0; r < kMr; ++r) {
      c[r] = _mm512_fmadd_ps(_mm512_set1_ps(arow[r]), bvec, c[r]);
    }
  }
  for (std::int64_t r = 0; r < kMr; ++r) _mm512_storeu_ps(acc + r * kNr, c[r]);
}
#elif defined(__AVX2__) && defined(__FMA__)
inline void micro_kernel(std::int64_t kb, const float* __restrict__ ap,
                         const float* __restrict__ bp,
                         float* __restrict__ acc) {
  static_assert(kNr == 16, "AVX2 micro-kernel assumes two ymm per row");
  __m256 lo[kMr];
  __m256 hi[kMr];
  for (std::int64_t r = 0; r < kMr; ++r) {
    lo[r] = _mm256_setzero_ps();
    hi[r] = _mm256_setzero_ps();
  }
  for (std::int64_t p = 0; p < kb; ++p) {
    const __m256 blo = _mm256_loadu_ps(bp + p * kNr);
    const __m256 bhi = _mm256_loadu_ps(bp + p * kNr + 8);
    const float* arow = ap + p * kMr;
    for (std::int64_t r = 0; r < kMr; ++r) {
      const __m256 av = _mm256_set1_ps(arow[r]);
      lo[r] = _mm256_fmadd_ps(av, blo, lo[r]);
      hi[r] = _mm256_fmadd_ps(av, bhi, hi[r]);
    }
  }
  for (std::int64_t r = 0; r < kMr; ++r) {
    _mm256_storeu_ps(acc + r * kNr, lo[r]);
    _mm256_storeu_ps(acc + r * kNr + 8, hi[r]);
  }
}
#else
inline void micro_kernel(std::int64_t kb, const float* __restrict__ ap,
                         const float* __restrict__ bp,
                         float* __restrict__ acc) {
  std::fill_n(acc, kMr * kNr, 0.0F);
  for (std::int64_t p = 0; p < kb; ++p) {
    const float* arow = ap + p * kMr;
    const float* brow = bp + p * kNr;
    for (std::int64_t r = 0; r < kMr; ++r) {
      const float av = arow[r];
      float* accr = acc + r * kNr;
      for (std::int64_t j = 0; j < kNr; ++j) accr[j] += av * brow[j];
    }
  }
}
#endif

// Write an accumulated tile into C.  On the first depth block beta applies
// (beta == 0 must not read C: freshly allocated outputs are uninitialized);
// later depth blocks accumulate.
inline void store_tile(float* c, std::int64_t ldc, const float* acc,
                       std::int64_t rows, std::int64_t cols, float alpha,
                       float beta, bool first_kblock) {
  for (std::int64_t r = 0; r < rows; ++r) {
    float* crow = c + r * ldc;
    const float* arow = acc + r * kNr;
    if (first_kblock) {
      if (beta == 0.0F) {
        for (std::int64_t j = 0; j < cols; ++j) crow[j] = alpha * arow[j];
      } else {
        for (std::int64_t j = 0; j < cols; ++j) {
          crow[j] = alpha * arow[j] + beta * crow[j];
        }
      }
    } else {
      for (std::int64_t j = 0; j < cols; ++j) crow[j] += alpha * arow[j];
    }
  }
}

// Reference-style ikj loop for problems too small to amortize packing.
void gemm_small(const float* a, const float* b, float* c, std::int64_t m,
                std::int64_t n, std::int64_t k, bool trans_a, bool trans_b,
                float alpha, float beta) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    if (beta == 0.0F) {
      std::fill_n(crow, n, 0.0F);
    } else if (beta != 1.0F) {
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    if (!trans_b) {
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = alpha * (trans_a ? a[p * m + i] : a[i * k + p]);
        if (av == 0.0F) continue;
        const float* brow = b + p * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    } else {
      for (std::int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0F;
        if (!trans_a) {
          const float* arow = a + i * k;
          for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        } else {
          for (std::int64_t p = 0; p < k; ++p) acc += a[p * m + i] * brow[p];
        }
        crow[j] += alpha * acc;
      }
    }
  }
}

void gemm_impl(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t n, std::int64_t k, bool trans_a, bool trans_b,
               float alpha, float beta, bool allow_threads) {
  if (m <= 0 || n <= 0) return;
  if (m * n * k < kSmallGemmFlops) {
    gemm_small(a, b, c, m, n, k, trans_a, trans_b, alpha, beta);
    return;
  }
  const bool threads =
      allow_threads && m * n * k >= kGemmParallelFlops;
  std::vector<float> b_pack;
  for (std::int64_t jc = 0; jc < n; jc += kNc) {
    const std::int64_t nb = std::min<std::int64_t>(kNc, n - jc);
    const std::int64_t jpanels = ceil_div(nb, kNr);
    for (std::int64_t pc = 0; pc < k; pc += kKc) {
      const std::int64_t kb = std::min<std::int64_t>(kKc, k - pc);
      b_pack.resize(static_cast<std::size_t>(jpanels * kb * kNr));
      pack_b_block(b_pack.data(), b, n, k, trans_b, jc, pc, nb, kb);
      const bool first = pc == 0;

      const std::int64_t mblocks = ceil_div(m, kMc);
      auto block_body = [&](std::int64_t blk_begin, std::int64_t blk_end) {
        std::vector<float> a_pack(
            static_cast<std::size_t>(ceil_div(kMc, kMr) * kMr * kb));
        alignas(64) float acc[kMr * kNr];
        for (std::int64_t blk = blk_begin; blk < blk_end; ++blk) {
          const std::int64_t ic = blk * kMc;
          const std::int64_t mb = std::min<std::int64_t>(kMc, m - ic);
          pack_a_block(a_pack.data(), a, m, k, trans_a, ic, pc, mb, kb);
          const std::int64_t ipanels = ceil_div(mb, kMr);
          for (std::int64_t jp = 0; jp < jpanels; ++jp) {
            const float* bp = b_pack.data() + jp * kb * kNr;
            const std::int64_t cols =
                std::min<std::int64_t>(kNr, nb - jp * kNr);
            for (std::int64_t ip = 0; ip < ipanels; ++ip) {
              const float* ap = a_pack.data() + ip * kb * kMr;
              micro_kernel(kb, ap, bp, acc);
              const std::int64_t rows =
                  std::min<std::int64_t>(kMr, mb - ip * kMr);
              store_tile(c + (ic + ip * kMr) * n + jc + jp * kNr, n, acc,
                         rows, cols, alpha, beta, first);
            }
          }
        }
      };
      if (threads) {
        ThreadPool::global().parallel_for(mblocks, block_body, /*grain=*/1);
      } else {
        block_body(0, mblocks);
      }
    }
  }
}

}  // namespace

void gemm_raw(const float* a, const float* b, float* c, std::int64_t m,
              std::int64_t n, std::int64_t k, bool trans_a, bool trans_b,
              float alpha, float beta) {
  // a: op(A)[m,k]; stored [m,k] if !trans_a, else [k,m].
  // b: op(B)[k,n]; stored [k,n] if !trans_b, else [n,k].
  gemm_impl(a, b, c, m, n, k, trans_a, trans_b, alpha, beta,
            /*allow_threads=*/true);
}

void gemm_batched(const float* a, const float* b, float* c, std::int64_t batch,
                  std::int64_t m, std::int64_t n, std::int64_t k,
                  std::int64_t stride_a, std::int64_t stride_b,
                  std::int64_t stride_c, bool trans_a, bool trans_b,
                  float alpha, float beta) {
  if (batch <= 0) return;
  if (batch == 1) {
    gemm_raw(a, b, c, m, n, k, trans_a, trans_b, alpha, beta);
    return;
  }
  // Parallelize across problems (each one runs single-threaded inside) when
  // the aggregate work is large enough; per-problem GEMMs in attention are
  // individually below the intra-GEMM threading threshold.
  auto body = [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      gemm_impl(a + i * stride_a, b + i * stride_b, c + i * stride_c, m, n, k,
                trans_a, trans_b, alpha, beta, /*allow_threads=*/false);
    }
  };
  if (batch * m * n * k >= kGemmParallelFlops) {
    ThreadPool::global().parallel_for(batch, body, /*grain=*/1);
  } else {
    body(0, batch);
  }
}

}  // namespace pac::ops
