// Reduced-precision tensor storage for the activation cache and the wire.
//
// Two compressed formats next to fp32:
//   fp16 — IEEE half with round-to-nearest-even, 2 bytes/element.  The
//          conversion is exactly the F16C semantics; the scalar fallback is
//          bit-identical to the hardware instruction so a cache written on
//          an AVX box reads back the same bytes everywhere.
//   int8 — symmetric per-row (last-dim) absmax scaling, 1 byte/element plus
//          one f32 scale per row: scale = absmax / 127, q = rne(x * 127 /
//          absmax) clamped to [-127, 127], dequant x' = q * scale.  The
//          per-row error is bounded by half a quantization step
//          (|x - x'| <= scale * (0.5 + eps)), the envelope the property
//          test in tests/quant_test.cpp asserts over 200 random trials.
//
// quantize/dequantize are the only entry points the cache and transports
// use; both dispatch AVX-512 / AVX2+F16C / scalar at compile time like the
// GEMM micro-kernel (quant.cpp is the second TU on -march=native — see
// src/tensor/CMakeLists.txt).  A kF32 QTensor is a bit-exact repack of the
// float storage, which is what keeps fp32 wire frames byte-identical to
// the legacy encoding.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace pac::quant {

enum class Dtype : std::uint8_t { kF32 = 0, kF16 = 1, kI8 = 2 };

inline constexpr std::size_t element_bytes(Dtype d) {
  return d == Dtype::kF32 ? 4u : d == Dtype::kF16 ? 2u : 1u;
}

const char* dtype_name(Dtype d);

// Compressed tensor: raw element storage plus (int8 only) per-row scales.
// Rows are the last dimension's vectors; a rank-0 scalar is one row of one
// element.  Carried by value through mailboxes and wire frames.
struct QTensor {
  Dtype dtype = Dtype::kF32;
  Shape shape;
  std::vector<std::uint8_t> data;  // numel * element_bytes(dtype)
  std::vector<float> scales;       // int8: rows() entries, else empty

  std::int64_t numel() const {
    std::int64_t n = 1;
    for (std::int64_t d : shape) n *= d;
    return n;
  }
  std::int64_t row_len() const {
    return shape.empty() ? 1 : shape.back();
  }
  std::int64_t rows() const {
    const std::int64_t len = row_len();
    return len == 0 ? 0 : numel() / len;
  }
  // Payload bytes (what the ledger and the wire are charged).
  std::uint64_t byte_size() const {
    return static_cast<std::uint64_t>(data.size()) +
           4ull * scales.size();
  }
};

// Compress a contiguous fp32 tensor.  kF32 is a bit-exact repack.
QTensor quantize(const Tensor& t, Dtype dtype);
// Same, straight from a raw contiguous buffer (the cache quantizes batch
// row slices without materialising a Tensor clone first).
QTensor quantize_rows(const float* src, Shape shape, Dtype dtype);

Tensor dequantize(const QTensor& q);
// Decompress into caller-owned storage of q.numel() floats (the cache
// writes straight into the assembled [n, T, H] batch).
void dequantize_into(const QTensor& q, float* dst);

// Scalar conversion primitives, exposed so tests can pin the format:
// bit-identical to the F16C / AVX round-to-nearest-even paths.
std::uint16_t f32_to_f16(float f);
float f16_to_f32(std::uint16_t h);

}  // namespace pac::quant
