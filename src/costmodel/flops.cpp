#include "costmodel/flops.hpp"

#include "common/error.hpp"

namespace pac::costmodel {
namespace {

using model::Technique;

struct LayerTerms {
  double weight_gemms = 0.0;  // parameterized GEMMs (proj + FFN)
  double attn_bmms = 0.0;     // parameter-free attention batched GEMMs
};

// Per mini-batch forward cost terms of one encoder layer.
LayerTerms encoder_terms(const model::ModelConfig& c, const SeqShape& s) {
  const double b = static_cast<double>(s.batch);
  const double t = static_cast<double>(s.seq);
  const double h = static_cast<double>(c.hidden);
  const double f = static_cast<double>(c.ffn);
  LayerTerms terms;
  terms.weight_gemms = b * (8.0 * t * h * h + 4.0 * t * h * f);
  terms.attn_bmms = b * 4.0 * t * t * h;
  return terms;
}

LayerTerms decoder_terms(const model::ModelConfig& c, const SeqShape& s) {
  const double b = static_cast<double>(s.batch);
  const double te = static_cast<double>(s.seq);      // encoder memory length
  const double td = static_cast<double>(s.dec_seq);  // target length
  const double h = static_cast<double>(c.hidden);
  const double f = static_cast<double>(c.ffn);
  LayerTerms terms;
  // Causal self-attention (q,k,v,o on t_d) + cross-attention (q,o on t_d;
  // k,v on t_e) + FFN on t_d.
  terms.weight_gemms =
      b * ((8.0 * td + 4.0 * td + 4.0 * te) * h * h + 4.0 * td * h * f);
  terms.attn_bmms = b * (4.0 * td * td * h + 4.0 * td * te * h);
  return terms;
}

// Extra trainable structures inside the backbone layer.
Flops peft_extra(const model::ModelConfig& c,
                 const model::TechniqueConfig& tc, const SeqShape& s,
                 bool decoder) {
  const double b = static_cast<double>(s.batch);
  const double t = static_cast<double>(s.seq);
  const double h = static_cast<double>(c.hidden);
  Flops extra;
  if (tc.technique == Technique::kAdapters) {
    const double bn = h / static_cast<double>(tc.adapter_reduction);
    const double fwd = b * 4.0 * t * h * bn;  // down + up
    extra.forward += fwd;
    extra.backward += 2.0 * fwd;  // trainable: dX + dW
  } else if (tc.technique == Technique::kLora) {
    const double r = static_cast<double>(tc.lora.rank);
    // LoRA on Wq and Wv: two bypasses of (down r + up r) per layer; the
    // decoder has two attention blocks.
    const double bypasses = decoder ? 4.0 : 2.0;
    const double fwd = b * bypasses * 4.0 * t * h * r;
    extra.forward += fwd;
    extra.backward += 2.0 * fwd;
  }
  return extra;
}

Flops layer_flops(const LayerTerms& terms,
                  const model::TechniqueConfig& tc) {
  Flops out;
  out.forward = terms.weight_gemms + terms.attn_bmms;
  switch (tc.technique) {
    case Technique::kFull:
      // dX + dW on every weight GEMM; bmms cost 2x forward in backward.
      out.backward = 2.0 * terms.weight_gemms + 2.0 * terms.attn_bmms;
      break;
    case Technique::kAdapters:
    case Technique::kLora:
      // Frozen backbone weights: dX only, no dW.
      out.backward = terms.weight_gemms + 2.0 * terms.attn_bmms;
      break;
    case Technique::kParallelAdapters:
    case Technique::kInference:
      // No backward through the backbone at all.
      out.backward = 0.0;
      break;
  }
  return out;
}

}  // namespace

Flops encoder_layer_flops(const model::ModelConfig& config,
                          const model::TechniqueConfig& technique,
                          const SeqShape& shape) {
  Flops out = layer_flops(encoder_terms(config, shape), technique);
  out += peft_extra(config, technique, shape, /*decoder=*/false);
  return out;
}

Flops decoder_layer_flops(const model::ModelConfig& config,
                          const model::TechniqueConfig& technique,
                          const SeqShape& shape) {
  Flops out = layer_flops(decoder_terms(config, shape), technique);
  out += peft_extra(config, technique, shape, /*decoder=*/true);
  return out;
}

Flops side_block_flops(const model::ModelConfig& config,
                       const model::TechniqueConfig& technique,
                       const SeqShape& shape) {
  PAC_CHECK(technique.pa_reduction > 0, "bad pa_reduction");
  const double b = static_cast<double>(shape.batch);
  const double t = static_cast<double>(shape.seq);
  const double h = static_cast<double>(config.hidden);
  const double r = h / static_cast<double>(technique.pa_reduction);
  // down_i (H -> r) + two r x r MLP linears.
  const double fwd = b * (2.0 * t * h * r + 4.0 * t * r * r);
  return {fwd, 2.0 * fwd};
}

Flops head_flops(const model::ModelConfig& config, const SeqShape& shape,
                 std::int64_t num_outputs) {
  const double b = static_cast<double>(shape.batch);
  const double h = static_cast<double>(config.hidden);
  const double c = static_cast<double>(num_outputs);
  const double fwd = b * 2.0 * h * c;
  return {fwd, 2.0 * fwd};
}

Flops model_flops(const model::ModelConfig& config,
                  const model::TechniqueConfig& technique,
                  const SeqShape& shape, bool include_decoder,
                  bool cached_epoch) {
  PAC_CHECK(!cached_epoch ||
                technique.technique == Technique::kParallelAdapters,
            "cached epochs require Parallel Adapters");
  Flops total;
  const std::int64_t layers =
      config.encoder_layers +
      (include_decoder ? config.decoder_layers : 0);
  if (!cached_epoch) {
    Flops enc = encoder_layer_flops(config, technique, shape);
    total += enc.scaled(static_cast<double>(config.encoder_layers));
    if (include_decoder) {
      Flops dec = decoder_layer_flops(config, technique, shape);
      total += dec.scaled(static_cast<double>(config.decoder_layers));
    }
  }
  if (technique.technique == Technique::kParallelAdapters) {
    Flops side = side_block_flops(config, technique, shape);
    total += side.scaled(static_cast<double>(layers));
  }
  total += head_flops(config, shape, 2);
  return total;
}

}  // namespace pac::costmodel
