// Analytic memory model (Table 1, Fig. 8b, Fig. 9b and the planner's OOM
// checks).
//
// Retention rules (fp32, bytes = 4 * elements, per retained micro-batch):
//   full backprop      — every GEMM input is saved for dW, plus attention
//                        probabilities and FFN pre-activations:
//                            (8 T H + 2 T F + heads T^2) per layer
//   frozen backbone    — (Adapters/LoRA) dW GEMMs are skipped, so GEMM
//                        inputs need not be retained; what remains is
//                            (5 T H + T F + heads T^2) per layer
//   parallel adapters  — the backbone retains nothing; each side block
//                        keeps ~4 T r
// Optimizer state is Adam (2x trainable bytes), matching the executed
// trainers.  Weights/gradients follow the parameter counts exactly.
#pragma once

#include "costmodel/flops.hpp"
#include "model/config.hpp"

namespace pac::costmodel {

struct MemoryBreakdown {
  std::uint64_t weights = 0;
  std::uint64_t gradients = 0;
  std::uint64_t optimizer = 0;
  std::uint64_t activations = 0;
  std::uint64_t cache = 0;

  std::uint64_t total() const {
    return weights + gradients + optimizer + activations + cache;
  }
};

// Retained activation bytes of one backbone layer for one micro-batch.
std::uint64_t layer_activation_bytes(const model::ModelConfig& config,
                                     const model::TechniqueConfig& technique,
                                     const SeqShape& shape, bool decoder);

// Retained bytes of one Parallel Adapter side block.
std::uint64_t side_block_activation_bytes(
    const model::ModelConfig& config,
    const model::TechniqueConfig& technique, const SeqShape& shape);

// Trainable parameter bytes of the whole model under a technique.
std::uint64_t trainable_param_bytes(const model::ModelConfig& config,
                                    const model::TechniqueConfig& technique,
                                    bool include_decoder);

// Whole-model single-device footprint for one resident mini-batch.
// `cached_phase` models PAC's phase 2: backbone weights released, only the
// side network + head resident, no backbone activations.
MemoryBreakdown standalone_memory(const model::ModelConfig& config,
                                  const model::TechniqueConfig& technique,
                                  const SeqShape& shape,
                                  bool include_decoder,
                                  bool cached_phase = false);

// Activation-cache storage per sample: (L+1) tensors of T x H at
// `bytes_per_element` each (paper §5.2 storage analysis).  4 = fp32
// (default, the uncompressed cache), 2 = fp16, 1 = int8 (which adds one
// fp32 scale per row to match the cache's stored format).
std::uint64_t cache_bytes_per_sample(const model::ModelConfig& config,
                                     std::int64_t seq, bool include_decoder,
                                     std::uint64_t bytes_per_element = 4);

// Per-device admission charge for one fine-tuning job spread over
// `num_devices`: an even split of the standalone footprint plus this
// device's activation-cache share.  Deliberately a *reservation* estimate
// (stage boundaries split weights unevenly; the planner prices exact
// per-stage memory once a device group is carved) — the service dispatcher
// charges this against each device's MemoryLedger headroom before
// scheduling, so a job that does not fit is queued or rejected instead of
// OOMing mid-run.
std::uint64_t job_reservation_bytes(const model::ModelConfig& config,
                                    const model::TechniqueConfig& technique,
                                    const SeqShape& shape,
                                    bool include_decoder, int num_devices,
                                    std::int64_t cached_samples_per_device,
                                    std::uint64_t cache_bytes_per_element = 4);

}  // namespace pac::costmodel
