// Hardware model of the paper's testbed.
//
// The paper evaluates on a cluster of NVIDIA Jetson Nano boards (4 GB DRAM,
// ~472 GFLOPS fp16 peak) connected by a 128 Mbps LAN.  We do not have that
// hardware; these constants parameterize the analytic cost model and the
// discrete-event simulator instead.  They are the only hand-calibrated
// numbers in the reproduction:
//
//   effective_flops — sustained fp32 training throughput.  Calibrated from
//       Table 2: Standalone/Adapters/T5-Base takes 1.21 h for 3 MRPC epochs
//       (11 004 samples -> ~0.40 s/sample at ~59 GFLOP/sample), implying
//       ~150 GFLOPS sustained.
//   os_reserved_bytes — DRAM the OS and runtime keep from the 4 GB total
//       (the paper notes 4-12 GB devices must also run system software).
//   flash read bandwidth — activation-cache reload path ("no more than tens
//       of milliseconds per micro-batch on embedded flash", §5.2).
#pragma once

#include <cstdint>

namespace pac::costmodel {

struct DeviceModel {
  double effective_flops = 150e9;       // sustained fp32 FLOP/s
  std::uint64_t dram_bytes = 4ULL << 30;
  std::uint64_t os_reserved_bytes = 1288490188;  // ~1.2 GiB
  double flash_read_bps = 400e6 * 8;    // 400 MB/s embedded flash

  std::uint64_t usable_bytes() const {
    return dram_bytes - os_reserved_bytes;
  }
};

struct NetworkModel {
  double bandwidth_bps = 128e6;  // paper: 128 Mbps LAN
  // Effective per-message overhead: LAN RTT plus userspace TCP
  // serialization on Jetson-class hosts (tens of ms in practice — this is
  // what makes deep pipelines pay for their extra hops).
  double latency_s = 20e-3;
  // Gradients are shipped fp16 on the wire (standard edge-training
  // compression; the paper calls the adapter AllReduce "swift").
  double allreduce_wire_factor = 0.5;

  double transfer_seconds(std::uint64_t bytes) const {
    return latency_s + static_cast<double>(bytes) * 8.0 / bandwidth_bps;
  }

  // Ring AllReduce of `bytes` (fp32 gradient bytes) across `group` devices.
  double allreduce_seconds(std::uint64_t bytes, int group) const {
    if (group <= 1 || bytes == 0) return 0.0;
    const double g = static_cast<double>(group);
    const double chunk =
        static_cast<double>(bytes) * allreduce_wire_factor / g;
    return 2.0 * (g - 1.0) * (chunk * 8.0 / bandwidth_bps + latency_s);
  }
};

inline DeviceModel jetson_nano() { return DeviceModel{}; }
inline NetworkModel edge_lan() { return NetworkModel{}; }

// Network model for executed in-process clusters (device threads sharing
// one address space): message passing is effectively a memcpy.
inline NetworkModel in_process_network() {
  NetworkModel net;
  net.bandwidth_bps = 100e9;
  net.latency_s = 50e-6;
  net.allreduce_wire_factor = 1.0;
  return net;
}

}  // namespace pac::costmodel
