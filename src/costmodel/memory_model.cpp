#include "costmodel/memory_model.hpp"

#include "common/error.hpp"

namespace pac::costmodel {

using model::Technique;

namespace {

constexpr std::uint64_t kF32 = 4;

std::uint64_t side_block_param_bytes(const model::ModelConfig& c,
                                     const model::TechniqueConfig& tc) {
  const std::int64_t r =
      std::max<std::int64_t>(1, c.hidden / tc.pa_reduction);
  // down [r, H] + bias r, LN 2r, w1/w2 [r, r] + biases.
  return kF32 * static_cast<std::uint64_t>(r * c.hidden + r + 2 * r +
                                           2 * (r * r + r));
}

std::uint64_t houlsby_param_bytes(const model::ModelConfig& c,
                                  const model::TechniqueConfig& tc) {
  const std::int64_t bn =
      std::max<std::int64_t>(1, c.hidden / tc.adapter_reduction);
  return kF32 * static_cast<std::uint64_t>(2 * c.hidden * bn + bn + c.hidden);
}

std::uint64_t lora_param_bytes(const model::ModelConfig& c,
                               const model::TechniqueConfig& tc,
                               bool decoder) {
  const std::int64_t r = tc.lora.rank;
  const std::int64_t bypasses = decoder ? 4 : 2;  // Wq + Wv per attention
  return kF32 * static_cast<std::uint64_t>(bypasses * 2 * c.hidden * r);
}

std::uint64_t head_param_bytes(const model::ModelConfig& c,
                               const model::TechniqueConfig& tc) {
  std::uint64_t bytes =
      kF32 * static_cast<std::uint64_t>(c.hidden * 2 + 2 + 2 * c.hidden);
  if (tc.technique == Technique::kParallelAdapters) {
    const std::int64_t r =
        std::max<std::int64_t>(1, c.hidden / tc.pa_reduction);
    // side entry (H->r) + side exit (r->H).
    bytes += kF32 * static_cast<std::uint64_t>(2 * r * c.hidden + r +
                                               c.hidden);
  }
  return bytes;
}

}  // namespace

std::uint64_t layer_activation_bytes(const model::ModelConfig& config,
                                     const model::TechniqueConfig& technique,
                                     const SeqShape& shape, bool decoder) {
  const std::uint64_t te = static_cast<std::uint64_t>(shape.seq);
  // Encoder layers run on the input length; decoder layers on the (short)
  // target length, with cross-attention saves on the encoder memory.
  const std::uint64_t t =
      decoder ? static_cast<std::uint64_t>(shape.dec_seq) : te;
  const std::uint64_t h = static_cast<std::uint64_t>(config.hidden);
  const std::uint64_t f = static_cast<std::uint64_t>(config.ffn);
  const std::uint64_t nh = static_cast<std::uint64_t>(config.heads);
  const std::uint64_t b = static_cast<std::uint64_t>(shape.batch);
  std::uint64_t elems = 0;
  switch (technique.technique) {
    case Technique::kFull:
      elems = 8 * t * h + nh * t * t + 2 * t * f;
      if (decoder) elems += 3 * te * h + nh * t * te;  // cross k/v + probs
      break;
    case Technique::kAdapters:
    case Technique::kLora:
      elems = 5 * t * h + nh * t * t + t * f;
      if (decoder) elems += 2 * te * h + nh * t * te;
      break;
    case Technique::kParallelAdapters:
    case Technique::kInference:
      return 0;  // forward-only backbone retains nothing
  }
  return kF32 * b * elems;
}

std::uint64_t side_block_activation_bytes(
    const model::ModelConfig& config,
    const model::TechniqueConfig& technique, const SeqShape& shape) {
  if (technique.technique != Technique::kParallelAdapters) return 0;
  const std::uint64_t r = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, config.hidden / technique.pa_reduction));
  return kF32 * static_cast<std::uint64_t>(shape.batch) * 4 *
         static_cast<std::uint64_t>(shape.seq) * r;
}

std::uint64_t trainable_param_bytes(const model::ModelConfig& config,
                                    const model::TechniqueConfig& technique,
                                    bool include_decoder) {
  const std::uint64_t layers = static_cast<std::uint64_t>(
      config.encoder_layers +
      (include_decoder ? config.decoder_layers : 0));
  switch (technique.technique) {
    case Technique::kFull:
      return kF32 * static_cast<std::uint64_t>(
                        config.full_param_count()) +
             head_param_bytes(config, technique);
    case Technique::kAdapters:
      return layers * houlsby_param_bytes(config, technique) +
             head_param_bytes(config, technique);
    case Technique::kLora: {
      std::uint64_t bytes =
          static_cast<std::uint64_t>(config.encoder_layers) *
          lora_param_bytes(config, technique, false);
      if (include_decoder) {
        bytes += static_cast<std::uint64_t>(config.decoder_layers) *
                 lora_param_bytes(config, technique, true);
      }
      return bytes + head_param_bytes(config, technique);
    }
    case Technique::kParallelAdapters:
      return layers * side_block_param_bytes(config, technique) +
             head_param_bytes(config, technique);
    case Technique::kInference:
      return 0;
  }
  return 0;
}

MemoryBreakdown standalone_memory(const model::ModelConfig& config,
                                  const model::TechniqueConfig& technique,
                                  const SeqShape& shape,
                                  bool include_decoder, bool cached_phase) {
  PAC_CHECK(!cached_phase ||
                technique.technique == Technique::kParallelAdapters,
            "cached phase requires Parallel Adapters");
  MemoryBreakdown mem;
  const std::uint64_t layers = static_cast<std::uint64_t>(
      config.encoder_layers +
      (include_decoder ? config.decoder_layers : 0));
  const std::uint64_t backbone_bytes =
      kF32 * static_cast<std::uint64_t>(config.full_param_count());

  mem.gradients = trainable_param_bytes(config, technique, include_decoder);
  mem.optimizer = technique.technique == Technique::kInference
                      ? 0
                      : 2 * mem.gradients;

  // Resident weights: frozen backbone + trainable structures — except in
  // the cached phase, where the backbone is released entirely.
  std::uint64_t trainable_structs = mem.gradients;
  switch (technique.technique) {
    case Technique::kFull:
      mem.weights = trainable_structs;  // the backbone IS trainable
      break;
    case Technique::kParallelAdapters:
      mem.weights =
          (cached_phase ? 0 : backbone_bytes) + trainable_structs;
      break;
    case Technique::kInference:
      mem.weights = backbone_bytes;
      break;
    default:
      mem.weights = backbone_bytes + trainable_structs;
  }
  if (technique.technique == Technique::kInference) {
    mem.gradients = 0;
  }

  if (!cached_phase) {
    std::uint64_t act = 0;
    act += static_cast<std::uint64_t>(config.encoder_layers) *
           layer_activation_bytes(config, technique, shape, false);
    if (include_decoder) {
      act += static_cast<std::uint64_t>(config.decoder_layers) *
             layer_activation_bytes(config, technique, shape, true);
    }
    act += layers * side_block_activation_bytes(config, technique, shape);
    mem.activations = act;
  } else {
    // Cached phase: side-block activations plus the resident cached inputs
    // of one mini-batch.
    mem.activations =
        layers * side_block_activation_bytes(config, technique, shape);
    mem.cache = static_cast<std::uint64_t>(shape.batch) *
                cache_bytes_per_sample(config, shape.seq, include_decoder);
  }
  return mem;
}

std::uint64_t cache_bytes_per_sample(const model::ModelConfig& config,
                                     std::int64_t seq, bool include_decoder,
                                     std::uint64_t bytes_per_element) {
  const std::uint64_t layers = static_cast<std::uint64_t>(
      config.encoder_layers +
      (include_decoder ? config.decoder_layers : 0));
  const std::uint64_t numel = (layers + 1) *
                              static_cast<std::uint64_t>(seq) *
                              static_cast<std::uint64_t>(config.hidden);
  std::uint64_t bytes = bytes_per_element * numel;
  if (bytes_per_element == 1) {
    // int8 entries carry one fp32 absmax scale per [T, H] row.
    bytes += kF32 * (layers + 1) * static_cast<std::uint64_t>(seq);
  }
  return bytes;
}

std::uint64_t job_reservation_bytes(const model::ModelConfig& config,
                                    const model::TechniqueConfig& technique,
                                    const SeqShape& shape,
                                    bool include_decoder, int num_devices,
                                    std::int64_t cached_samples_per_device,
                                    std::uint64_t cache_bytes_per_element) {
  PAC_CHECK(num_devices >= 1, "job needs at least one device");
  const MemoryBreakdown standalone =
      standalone_memory(config, technique, shape, include_decoder);
  const std::uint64_t n = static_cast<std::uint64_t>(num_devices);
  const std::uint64_t split = (standalone.total() + n - 1) / n;
  const std::uint64_t cache =
      static_cast<std::uint64_t>(std::max<std::int64_t>(
          0, cached_samples_per_device)) *
      cache_bytes_per_sample(config, shape.seq, include_decoder,
                             cache_bytes_per_element);
  return split + cache;
}

}  // namespace pac::costmodel
