// Analytic FLOP counts for transformer fine-tuning (Figure 3 and the
// simulator's compute durations).
//
// Conventions: one multiply-accumulate = 2 FLOPs; elementwise work
// (LayerNorm, softmax, residuals) is negligible next to the GEMMs and is
// ignored.  Backward of y = xW costs one GEMM for dx and one for dW; the
// dW GEMM is skipped for frozen weights — this asymmetry is exactly why
// PEFT techniques that still backprop the backbone (Adapters, LoRA) see
// forward FLOPs rise to ~half of the total (paper Fig. 3: 54 %), while
// full fine-tuning sits at one third.
#pragma once

#include "model/config.hpp"

namespace pac::costmodel {

struct Flops {
  double forward = 0.0;
  double backward = 0.0;

  double total() const { return forward + backward; }
  Flops& operator+=(const Flops& o) {
    forward += o.forward;
    backward += o.backward;
    return *this;
  }
  Flops scaled(double k) const { return {forward * k, backward * k}; }
};

struct SeqShape {
  std::int64_t batch = 16;
  std::int64_t seq = 128;      // encoder input length
  std::int64_t dec_seq = 16;   // decoder target length (GLUE labels are a
                               // few tokens; 16 covers label + padding)
};

// One encoder layer processing `shape`, under the given technique
// (technique decides which dW GEMMs run and what adapter work is added).
Flops encoder_layer_flops(const model::ModelConfig& config,
                          const model::TechniqueConfig& technique,
                          const SeqShape& shape);

// One decoder layer (adds causal self-attention + cross-attention).
Flops decoder_layer_flops(const model::ModelConfig& config,
                          const model::TechniqueConfig& technique,
                          const SeqShape& shape);

// One Parallel Adapter side block at width r = hidden / pa_reduction
// (always fully trained: dX + dW).
Flops side_block_flops(const model::ModelConfig& config,
                       const model::TechniqueConfig& technique,
                       const SeqShape& shape);

// Task head (pool + classifier) — tiny but kept for completeness.
Flops head_flops(const model::ModelConfig& config, const SeqShape& shape,
                 std::int64_t num_outputs);

// Whole-model totals for one mini-batch.  `cached_epoch` (Parallel Adapters
// only) drops the backbone forward entirely — the activation-cache path.
Flops model_flops(const model::ModelConfig& config,
                  const model::TechniqueConfig& technique,
                  const SeqShape& shape, bool include_decoder,
                  bool cached_epoch = false);

}  // namespace pac::costmodel
