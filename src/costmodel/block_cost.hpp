// Analytic per-block costs — the planner's and simulator's common currency.
//
// The paper-scale model is the full encoder-decoder stack of Table 4; its
// pipeline-partitionable block list is
//     [embedding, enc_1 .. enc_Le, dec_1 .. dec_Ld, head]
// and each entry carries compute time inputs (FLOPs), resident parameter
// bytes, per-micro retained activation bytes, and inter-stage message
// sizes under the chosen fine-tuning technique.
#pragma once

#include <string>
#include <vector>

#include "costmodel/device_spec.hpp"
#include "costmodel/flops.hpp"
#include "costmodel/memory_model.hpp"

namespace pac::costmodel {

struct BlockCost {
  std::string name;
  Flops flops;                          // per micro-batch of `shape`
  std::uint64_t param_bytes = 0;        // resident weights (incl. frozen)
  std::uint64_t trainable_bytes = 0;    // trainable parameter bytes
  std::uint64_t activation_bytes = 0;   // retained per in-flight micro
  std::uint64_t fwd_msg_bytes = 0;      // forward inter-stage message
  std::uint64_t bwd_msg_bytes = 0;      // backward inter-stage message
};

// Block list for one *micro-batch* of `shape` under the technique.
std::vector<BlockCost> analytic_blocks(
    const model::ModelConfig& config,
    const model::TechniqueConfig& technique, const SeqShape& micro_shape,
    bool include_decoder, std::int64_t head_outputs = 2);

// Convenience sums over a contiguous block range [begin, end).
struct RangeCost {
  double fwd_seconds = 0.0;  // at the given device throughput
  double bwd_seconds = 0.0;
  std::uint64_t param_bytes = 0;
  std::uint64_t trainable_bytes = 0;
  std::uint64_t activation_bytes = 0;
};
RangeCost sum_range(const std::vector<BlockCost>& blocks, std::int64_t begin,
                    std::int64_t end, const DeviceModel& device);

}  // namespace pac::costmodel
