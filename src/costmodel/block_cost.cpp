#include "costmodel/block_cost.hpp"

#include "common/error.hpp"

namespace pac::costmodel {

using model::Technique;

std::vector<BlockCost> analytic_blocks(
    const model::ModelConfig& config,
    const model::TechniqueConfig& technique, const SeqShape& micro_shape,
    bool include_decoder, std::int64_t head_outputs) {
  constexpr std::uint64_t kF32 = 4;
  const bool pa = technique.technique == Technique::kParallelAdapters;
  const bool backprop = technique.technique == Technique::kFull ||
                        technique.technique == Technique::kAdapters ||
                        technique.technique == Technique::kLora;
  const std::uint64_t b = static_cast<std::uint64_t>(micro_shape.batch);
  const std::uint64_t t = static_cast<std::uint64_t>(micro_shape.seq);
  const std::uint64_t h = static_cast<std::uint64_t>(config.hidden);
  const std::int64_t r =
      std::max<std::int64_t>(1, config.hidden / technique.pa_reduction);

  const std::uint64_t hidden_msg = kF32 * b * t * h;
  const std::uint64_t adapter_msg =
      pa ? kF32 * b * t * static_cast<std::uint64_t>(r) : 0;
  // Forward always carries the hidden states (plus the side state under
  // PA); backward carries d_hidden for backprop techniques but only the
  // r-wide adapter gradient under PA — the gradient highway.
  const std::uint64_t fwd_msg = hidden_msg + adapter_msg;
  const std::uint64_t bwd_msg = pa ? adapter_msg
                                   : (backprop ? hidden_msg : 0);

  const std::uint64_t side_params =
      pa ? kF32 * static_cast<std::uint64_t>(
                      r * config.hidden + r + 2 * r + 2 * (r * r + r))
         : 0;
  const std::uint64_t side_act =
      side_block_activation_bytes(config, technique, micro_shape);
  const Flops side_flops =
      pa ? side_block_flops(config, technique, micro_shape) : Flops{};

  std::vector<BlockCost> blocks;

  // ---- embedding ----
  {
    BlockCost blk;
    blk.name = "embedding";
    blk.param_bytes =
        kF32 * static_cast<std::uint64_t>(config.embedding_params());
    if (technique.technique == Technique::kFull) {
      blk.trainable_bytes = blk.param_bytes;
    }
    if (pa) {
      // side entry H -> r
      const std::uint64_t entry =
          kF32 * static_cast<std::uint64_t>(config.hidden * r + r);
      blk.param_bytes += entry;
      blk.trainable_bytes += entry;
      blk.flops.forward +=
          static_cast<double>(2 * b * t * h) * static_cast<double>(r);
      blk.flops.backward += 2.0 * blk.flops.forward;
      blk.activation_bytes += side_act;
    }
    if (backprop) {
      // Embedding output retained by the first layer's LayerNorm.
      blk.activation_bytes += hidden_msg;
    }
    blk.fwd_msg_bytes = fwd_msg;
    blk.bwd_msg_bytes = bwd_msg;
    blocks.push_back(std::move(blk));
  }

  // ---- encoder / decoder layers ----
  auto add_layers = [&](std::int64_t count, bool decoder) {
    for (std::int64_t i = 0; i < count; ++i) {
      BlockCost blk;
      blk.name = (decoder ? "decoder_" : "encoder_") + std::to_string(i);
      blk.flops = decoder
                      ? decoder_layer_flops(config, technique, micro_shape)
                      : encoder_layer_flops(config, technique, micro_shape);
      std::uint64_t params =
          kF32 * static_cast<std::uint64_t>(
                     decoder ? config.decoder_layer_params()
                             : config.encoder_layer_params());
      std::uint64_t trainable = 0;
      switch (technique.technique) {
        case Technique::kFull:
          trainable = params;
          break;
        case Technique::kAdapters: {
          const std::int64_t bn = std::max<std::int64_t>(
              1, config.hidden / technique.adapter_reduction);
          trainable = kF32 * static_cast<std::uint64_t>(
                                 2 * config.hidden * bn + bn + config.hidden);
          params += trainable;
          break;
        }
        case Technique::kLora: {
          const std::int64_t lr = technique.lora.rank;
          const std::int64_t bypasses = decoder ? 4 : 2;
          trainable = kF32 * static_cast<std::uint64_t>(
                                 bypasses * 2 * config.hidden * lr);
          params += trainable;
          break;
        }
        case Technique::kParallelAdapters:
          trainable = side_params;
          params += side_params;
          blk.flops += side_flops;
          break;
        case Technique::kInference:
          break;
      }
      blk.param_bytes = params;
      blk.trainable_bytes = trainable;
      blk.activation_bytes =
          layer_activation_bytes(config, technique, micro_shape, decoder) +
          side_act;
      blk.fwd_msg_bytes = fwd_msg;
      blk.bwd_msg_bytes = bwd_msg;
      blocks.push_back(std::move(blk));
    }
  };
  add_layers(config.encoder_layers, false);
  if (include_decoder) add_layers(config.decoder_layers, true);

  // ---- head ----
  {
    BlockCost blk;
    blk.name = "head";
    blk.flops = head_flops(config, micro_shape, head_outputs);
    blk.param_bytes = kF32 * static_cast<std::uint64_t>(
                                 config.hidden * head_outputs + head_outputs +
                                 2 * config.hidden);
    blk.trainable_bytes =
        technique.technique == Technique::kInference ? 0 : blk.param_bytes;
    if (pa) {
      const std::uint64_t exit_bytes =
          kF32 * static_cast<std::uint64_t>(r * config.hidden + config.hidden);
      blk.param_bytes += exit_bytes;
      blk.trainable_bytes += exit_bytes;
      blk.activation_bytes += adapter_msg;
    }
    if (backprop || technique.technique == Technique::kParallelAdapters) {
      blk.activation_bytes += hidden_msg;  // head LN retention
    }
    blk.fwd_msg_bytes = 0;  // nothing downstream
    blk.bwd_msg_bytes = 0;
    blocks.push_back(std::move(blk));
  }
  return blocks;
}

RangeCost sum_range(const std::vector<BlockCost>& blocks, std::int64_t begin,
                    std::int64_t end, const DeviceModel& device) {
  PAC_CHECK(begin >= 0 && begin < end &&
                end <= static_cast<std::int64_t>(blocks.size()),
            "bad block range [" << begin << ", " << end << ")");
  RangeCost out;
  for (std::int64_t i = begin; i < end; ++i) {
    const BlockCost& blk = blocks[static_cast<std::size_t>(i)];
    out.fwd_seconds += blk.flops.forward / device.effective_flops;
    out.bwd_seconds += blk.flops.backward / device.effective_flops;
    out.param_bytes += blk.param_bytes;
    out.trainable_bytes += blk.trainable_bytes;
    out.activation_bytes += blk.activation_bytes;
  }
  return out;
}

}  // namespace pac::costmodel
