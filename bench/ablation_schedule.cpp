// Ablation — 1F1B vs GPipe micro-batch scheduling (DESIGN.md §5.1).
// The 1F1B schedule PAC adopts (paper §5.1, citing PipeDream) bounds
// in-flight activations by the downstream stage count instead of the micro
// count; GPipe's all-forward-then-all-backward keeps every micro resident.
// Jetson-scale T5-Base pipeline, 4 stages, full fine-tuning (largest
// activations), sweeping micro-batch counts.
#include <cstdio>

#include "sim/event_sim.hpp"

int main() {
  using namespace pac;
  const auto cfg_model = model::t5_base();
  const auto tc = model::paper_technique_config(model::Technique::kFull);

  std::printf("Ablation — 1F1B vs GPipe (T5-Base, Full FT, 4-stage "
              "pipeline, batch 16, Jetson scale)\n\n");
  std::printf("%7s | %12s %12s | %14s %14s | %s\n", "micros", "1F1B s",
              "GPipe s", "1F1B act GiB", "GPipe act GiB", "GPipe OOM?");
  for (std::int64_t micros : {2, 4, 8, 16}) {
    auto input = planner::analytic_planner_input(
        cfg_model, tc, costmodel::SeqShape{16 / micros, 128, 16},
        costmodel::jetson_nano(), costmodel::edge_lan(), 4, micros, true);
    auto plan = pipeline::ParallelPlan::pure_pipeline(input.num_blocks(), 4,
                                                      micros);
    sim::SimConfig sim_cfg;
    sim_cfg.input = input;
    sim_cfg.plan = plan;

    sim_cfg.schedule = pipeline::ScheduleKind::k1F1B;
    auto r1 = sim::simulate_minibatch(sim_cfg);

    sim_cfg.schedule = pipeline::ScheduleKind::kGPipe;
    sim_cfg.input.gpipe_memory = true;
    auto r2 = sim::simulate_minibatch(sim_cfg);

    auto peak = [](const std::vector<std::uint64_t>& v) {
      std::uint64_t mx = 0;
      for (std::uint64_t x : v) mx = std::max(mx, x);
      return static_cast<double>(mx) / (1024.0 * 1024.0 * 1024.0);
    };
    std::printf("%7lld | %12.2f %12.2f | %14.2f %14.2f | %s\n",
                static_cast<long long>(micros),
                r1.oom ? -1.0 : r1.minibatch_seconds,
                r2.oom ? -1.0 : r2.minibatch_seconds,
                peak(r1.peak_memory_per_device),
                peak(r2.peak_memory_per_device), r2.oom ? "OOM" : "fits");
  }
  std::printf("\nReading: both schedules share the same bubble at equal "
              "micro counts, but GPipe's activation footprint grows with "
              "micros while 1F1B's stays bounded — which is why Eco-FL "
              "(GPipe-style) must run fewer/larger micros and loses "
              "throughput (paper §6.2).\n");
  return 0;
}
