// Table 1 — memory-footprint breakdown of fine-tuning techniques.
// Model: T5-Large; mini-batch 16; sequence length 128; fp32.
// Paper reference values are printed beside our analytic model's numbers.
#include <cstdio>

#include "costmodel/memory_model.hpp"

namespace {

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

struct PaperRow {
  const char* technique;
  double trainable_m;  // millions
  double weights;
  double activations;
  double gradients;
  double total;
};

// Table 1 of the paper (GB).
constexpr PaperRow kPaper[] = {
    {"Full", 737.0, 2.75, 5.33, 2.75, 10.83},
    {"Adapters", 12.0, 2.80, 4.04, 0.05, 6.89},
    {"LoRA", 9.0, 2.78, 4.31, 0.04, 7.13},
    {"Inference", 0.0, 2.75, 0.0, 0.0, 2.75},
};

}  // namespace

int main() {
  using namespace pac;
  using model::Technique;
  const auto cfg = model::t5_large();
  const costmodel::SeqShape shape{16, 128, 16};

  std::printf("Table 1 — memory footprint breakdown (T5-Large, batch 16, "
              "seq 128, fp32)\n");
  std::printf("%-18s %12s | %8s %8s %8s %8s %8s | %s\n", "Technique",
              "Trainable", "Weights", "Activ.", "Grads", "Optim.", "Total",
              "paper total (W/A/G/T)");
  std::printf("%.*s\n", 118,
              "-----------------------------------------------------------"
              "-----------------------------------------------------------");

  const Technique techniques[] = {Technique::kFull, Technique::kAdapters,
                                  Technique::kLora, Technique::kInference};
  for (std::size_t i = 0; i < 4; ++i) {
    const auto tc = model::paper_technique_config(techniques[i]);
    const auto mem =
        costmodel::standalone_memory(cfg, tc, shape, /*include_decoder=*/true);
    const double trainable_m =
        static_cast<double>(
            costmodel::trainable_param_bytes(cfg, tc, true)) /
        4.0 / 1e6;
    std::printf("%-18s %9.1f M  | %7.2f  %7.2f  %7.2f  %7.2f  %7.2f  | "
                "%.2f (%.2f/%.2f/%.2f)\n",
                model::technique_name(techniques[i]), trainable_m,
                static_cast<double>(mem.weights) / kGiB,
                static_cast<double>(mem.activations) / kGiB,
                static_cast<double>(mem.gradients) / kGiB,
                static_cast<double>(mem.optimizer) / kGiB,
                static_cast<double>(mem.total()) / kGiB, kPaper[i].total,
                kPaper[i].weights, kPaper[i].activations,
                kPaper[i].gradients);
  }

  // Our contribution rows (not in the paper's Table 1, shown for context).
  std::printf("\nPAC's technique under the same workload:\n");
  const auto pa =
      model::paper_technique_config(Technique::kParallelAdapters);
  const auto live =
      costmodel::standalone_memory(cfg, pa, shape, true, false);
  const auto cached =
      costmodel::standalone_memory(cfg, pa, shape, true, true);
  std::printf("%-18s              | %7.2f  %7.2f  %7.2f  %7.2f  %7.2f  |\n",
              "ParallelAdapters",
              static_cast<double>(live.weights) / kGiB,
              static_cast<double>(live.activations) / kGiB,
              static_cast<double>(live.gradients) / kGiB,
              static_cast<double>(live.optimizer) / kGiB,
              static_cast<double>(live.total()) / kGiB);
  std::printf("%-18s              | %7.2f  %7.2f  %7.2f  %7.2f  %7.2f  | "
              "(backbone released; cache resident for one batch)\n",
              "  + cached phase",
              static_cast<double>(cached.weights) / kGiB,
              static_cast<double>(cached.activations + cached.cache) / kGiB,
              static_cast<double>(cached.gradients) / kGiB,
              static_cast<double>(cached.optimizer) / kGiB,
              static_cast<double>(cached.total()) / kGiB);

  const double reduction =
      static_cast<double>(costmodel::standalone_memory(
                              cfg,
                              model::paper_technique_config(
                                  Technique::kAdapters),
                              shape, true)
                              .total()) /
      static_cast<double>(cached.total());
  std::printf("\nmemory reduction of the cached phase vs the Adapters "
              "baseline: %.2fx (paper reports up to 8.64x vs baselines)\n",
              reduction);
  return 0;
}
