// Figure 3 — forward vs backward FLOPs per technique.
// Mini-batch 16, sequence length 128 (paper setup), T5-Large.
// Paper: forward is ~54 % of total under Adapters/LoRA (1/3 under Full).
#include <cstdio>

#include "costmodel/flops.hpp"

int main() {
  using namespace pac;
  using model::Technique;
  const costmodel::SeqShape shape{16, 128, 16};

  std::printf("Figure 3 — FLOPs split per mini-batch (batch 16, seq 128)\n");
  for (const auto& cfg :
       {model::t5_base(), model::bart_large(), model::t5_large()}) {
    std::printf("\n== %s ==\n", cfg.name.c_str());
    std::printf("%-18s %12s %12s %10s | %s\n", "Technique", "fwd TFLOPs",
                "bwd TFLOPs", "fwd share", "paper fwd share");
    for (Technique t :
         {Technique::kFull, Technique::kAdapters, Technique::kLora,
          Technique::kParallelAdapters}) {
      const auto tc = model::paper_technique_config(t);
      const auto f =
          costmodel::model_flops(cfg, tc, shape, /*include_decoder=*/true);
      const char* paper_ref =
          t == Technique::kFull
              ? "~33 % (fwd:bwd = 1:2)"
              : (t == Technique::kAdapters || t == Technique::kLora
                     ? "~54 %"
                     : "n/a (PAC)");
      std::printf("%-18s %12.2f %12.2f %9.1f%% | %s\n",
                  model::technique_name(t), f.forward / 1e12,
                  f.backward / 1e12, 100.0 * f.forward / f.total(),
                  paper_ref);
    }
    // The cached epoch removes the backbone forward entirely.
    const auto pa =
        model::paper_technique_config(Technique::kParallelAdapters);
    const auto live = costmodel::model_flops(cfg, pa, shape, true, false);
    const auto cached = costmodel::model_flops(cfg, pa, shape, true, true);
    std::printf("%-18s %12.2f %12.2f  -> %.1f%% of the live epoch's "
                "compute\n",
                "  PA cached epoch", cached.forward / 1e12,
                cached.backward / 1e12,
                100.0 * cached.total() / live.total());
  }
  return 0;
}
