// Figure 9 — scalability of PAC's hybrid parallelism vs Eco-FL (pipeline)
// and EDDL (data parallel), all using the Parallel Adapters technique and
// no activation cache (paper §6.4 ablation setup): batch = #devices,
// seq 128, 2-8 Jetson Nanos.
//
// (a) throughput (samples/s)      — paper: PAC ≥ Eco-FL by up to +39.5 %,
//                                   EDDL OOM on BART-Large / T5-Large
// (b) peak per-device weight memory
#include <cstdio>

#include "sim/scenarios.hpp"

namespace {

using namespace pac;

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

void run_model(const model::ModelConfig& m) {
  std::printf("== %s ==\n", m.name.c_str());
  std::printf("(a) throughput, samples/s      (b) peak weight GiB/device\n");
  std::printf("%4s  %8s %8s %8s   %8s %8s %8s\n", "dev", "PAC", "Eco-FL",
              "EDDL", "PAC", "Eco-FL", "EDDL");
  for (int devices = 2; devices <= 8; devices += 2) {
    sim::ScenarioConfig cfg;
    cfg.model = m;
    cfg.technique = model::Technique::kParallelAdapters;
    cfg.task = data::GlueTask::kMrpc;
    cfg.num_devices = devices;
    cfg.global_batch = devices;
    cfg.per_device_batch = 1;  // Fig 9: batch = #devices total
    cfg.pac_use_cache = false;

    double tput[3] = {0, 0, 0};
    double wmem[3] = {0, 0, 0};
    const sim::SystemKind systems[] = {sim::SystemKind::kPac,
                                       sim::SystemKind::kEcoFl,
                                       sim::SystemKind::kEddl};
    for (int i = 0; i < 3; ++i) {
      auto r = sim::simulate_system(systems[i], cfg);
      if (r.oom) {
        tput[i] = -1;
        continue;
      }
      tput[i] = r.throughput_samples_per_s;
      std::uint64_t mx = 0;
      for (std::uint64_t w : r.weight_memory_per_device) {
        mx = std::max(mx, w);
      }
      wmem[i] = static_cast<double>(mx) / kGiB;
    }
    auto cellf = [](double v, char* buf, std::size_t n) {
      if (v < 0) {
        std::snprintf(buf, n, "OOM");
      } else {
        std::snprintf(buf, n, "%.3f", v);
      }
    };
    char a[3][16];
    char b[3][16];
    for (int i = 0; i < 3; ++i) {
      cellf(tput[i], a[i], sizeof(a[i]));
      cellf(tput[i] < 0 ? -1 : wmem[i], b[i], sizeof(b[i]));
    }
    std::printf("%4d  %8s %8s %8s   %8s %8s %8s", devices, a[0], a[1],
                a[2], b[0], b[1], b[2]);
    if (tput[0] > 0 && tput[1] > 0) {
      std::printf("   PAC vs Eco-FL: %+.1f%%",
                  100.0 * (tput[0] - tput[1]) / tput[1]);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Figure 9 — scalability across 2-8 simulated Jetson Nanos "
              "(Parallel Adapters, no cache, batch = #devices)\n");
  std::printf("paper: PAC throughput exceeds Eco-FL (up to +39.5%%); EDDL "
              "OOMs on BART-Large and T5-Large\n\n");
  run_model(model::t5_base());
  run_model(model::bart_large());
  run_model(model::t5_large());
  return 0;
}
