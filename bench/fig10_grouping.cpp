// Figure 10 — device-grouping decisions of PAC's hybrid-parallelism
// planner across models and cluster sizes (Parallel Adapters, batch 16,
// 16 micro-batches, Jetson scale).
// Paper reference: e.g. BART-Large on 8 devices ⇒ 2 stages x 4 devices;
// EDDL cannot host BART-Large at all, Eco-FL needs all 8 stages.
#include <cstdio>

#include "planner/planner.hpp"

int main() {
  using namespace pac;
  std::printf("Figure 10 — PAC planner device groupings (simulated Jetson "
              "cluster, Parallel Adapters)\n\n");
  std::printf("%-12s %4s  %-10s  %s\n", "Model", "dev", "stage sizes",
              "stage block ranges");
  for (const auto& cfg :
       {model::t5_base(), model::bart_large(), model::t5_large()}) {
    for (int devices = 2; devices <= 8; ++devices) {
      auto input = planner::analytic_planner_input(
          cfg,
          model::paper_technique_config(
              model::Technique::kParallelAdapters),
          costmodel::SeqShape{1, 128, 16}, costmodel::jetson_nano(),
          costmodel::edge_lan(), devices, /*num_micro_batches=*/16, true);
      planner::PlanEstimate est = planner::plan_hybrid(input);
      std::printf("%-12s %4d  ", cfg.name.c_str(), devices);
      if (!est.feasible) {
        std::printf("infeasible (%s)\n", est.note.c_str());
        continue;
      }
      std::string sizes;
      std::string ranges;
      for (const auto& st : est.plan.stages) {
        if (!sizes.empty()) sizes += "+";
        sizes += std::to_string(st.devices.size());
        ranges += "[" + std::to_string(st.block_begin) + ".." +
                  std::to_string(st.block_end - 1) + "] ";
      }
      std::printf("%-10s  %s (est %.2fs/minibatch)\n", sizes.c_str(),
                  ranges.c_str(), est.minibatch_seconds);
    }
    std::printf("\n");
  }
  std::printf("paper reference: BART-Large @ 8 devices = 2 stages x 4 "
              "devices each\n");
  return 0;
}
