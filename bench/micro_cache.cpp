// Activation-cache micro-benchmarks (google-benchmark): record, fetch,
// disk spill/reload, and redistribution throughput.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <numeric>

#include "cache/activation_cache.hpp"
#include "cache/redistribution.hpp"

namespace {

using namespace pac;

cache::CacheConfig mem_cfg(std::int64_t blocks) {
  cache::CacheConfig cfg;
  cfg.num_blocks = blocks;
  return cfg;
}

void BM_CacheRecord(benchmark::State& state) {
  const std::int64_t blocks = 5;
  const std::int64_t t = 16;
  const std::int64_t h = state.range(0);
  Rng rng(1);
  Tensor hidden = Tensor::randn({8, t, h}, rng);
  std::vector<std::int64_t> ids(8);
  std::int64_t next_id = 0;
  for (auto _ : state) {
    cache::ActivationCache cache(mem_cfg(blocks));
    std::iota(ids.begin(), ids.end(), next_id);
    next_id += 8;
    for (std::int64_t b = 0; b < blocks; ++b) {
      cache.record(ids, b, hidden);
    }
    benchmark::DoNotOptimize(cache.memory_bytes());
  }
  state.SetBytesProcessed(state.iterations() * blocks * hidden.numel() * 4);
}
BENCHMARK(BM_CacheRecord)->Arg(32)->Arg(128);

void BM_CacheFetch(benchmark::State& state) {
  const std::int64_t blocks = 5;
  const std::int64_t h = state.range(0);
  Rng rng(2);
  cache::ActivationCache cache(mem_cfg(blocks));
  Tensor hidden = Tensor::randn({16, 8, h}, rng);
  std::vector<std::int64_t> ids(16);
  std::iota(ids.begin(), ids.end(), 0);
  for (std::int64_t b = 0; b < blocks; ++b) cache.record(ids, b, hidden);
  for (auto _ : state) {
    auto got = cache.fetch(ids);
    benchmark::DoNotOptimize(got[0].data());
  }
  state.SetBytesProcessed(state.iterations() * blocks * hidden.numel() * 4);
}
BENCHMARK(BM_CacheFetch)->Arg(32)->Arg(128);

void BM_CacheDiskSpillReload(benchmark::State& state) {
  const std::string dir = "/tmp/pac_bench_cache_spill";
  std::filesystem::remove_all(dir);
  cache::CacheConfig cfg;
  cfg.num_blocks = 5;
  cfg.disk_backed = true;
  cfg.directory = dir;
  cache::ActivationCache cache(cfg);
  Rng rng(3);
  Tensor hidden = Tensor::randn({4, 8, 64}, rng);
  std::vector<std::int64_t> ids{0, 1, 2, 3};
  for (std::int64_t b = 0; b < 5; ++b) cache.record(ids, b, hidden);
  for (auto _ : state) {
    auto got = cache.fetch(ids);  // reload from disk every time
    benchmark::DoNotOptimize(got[0].data());
  }
  state.SetBytesProcessed(state.iterations() * 5 * hidden.numel() * 4);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CacheDiskSpillReload);

void BM_Redistribution(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const std::int64_t samples = 32;
  for (auto _ : state) {
    state.PauseTiming();
    dist::EdgeCluster cluster(world,
                              std::numeric_limits<std::uint64_t>::max());
    std::vector<std::unique_ptr<cache::ActivationCache>> shards;
    Rng rng(4);
    for (int r = 0; r < world; ++r) {
      shards.push_back(
          std::make_unique<cache::ActivationCache>(mem_cfg(world)));
      Tensor block = Tensor::randn({8, 32}, rng);
      for (std::int64_t s = 0; s < samples; ++s) {
        shards.back()->put_block(s, r, block.clone());
      }
    }
    state.ResumeTiming();
    cluster.run([&](dist::DeviceContext& ctx) {
      cache::redistribute_cache(
          ctx, *shards[static_cast<std::size_t>(ctx.rank)],
          cache::modulo_sharding(world));
    });
  }
}
BENCHMARK(BM_Redistribution)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
