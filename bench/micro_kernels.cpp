// Kernel micro-benchmarks (google-benchmark): the primitives whose cost
// the analytic model abstracts — GEMM, softmax, LayerNorm, attention, and
// a full encoder-layer forward/backward at executed scale.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>

#include "nn/attention.hpp"
#include "nn/transformer_layer.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace pac;

void BM_Gemm(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = ops::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTransposed(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(2);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = ops::matmul_nt(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmTransposed)->Arg(64)->Arg(128);

void BM_GemmBatched(benchmark::State& state) {
  // Attention-shaped batch: batch = B * num_heads small GEMMs, the exact
  // pattern the per-head score/context matmuls produce.
  const auto t = state.range(0);
  constexpr std::int64_t kBatch = 16;  // 4 sequences x 4 heads
  constexpr std::int64_t kHeadDim = 16;
  Rng rng(8);
  Tensor a = Tensor::randn({kBatch, t, kHeadDim}, rng);
  Tensor b = Tensor::randn({kBatch, t, kHeadDim}, rng);
  Tensor c({kBatch, t, t});
  for (auto _ : state) {
    ops::gemm_batched(a.data(), b.data(), c.data(), kBatch, t, t, kHeadDim,
                      t * kHeadDim, t * kHeadDim, t * t,
                      /*trans_a=*/false, /*trans_b=*/true, 1.0F, 0.0F);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * kBatch * t * t * kHeadDim);
}
BENCHMARK(BM_GemmBatched)->Arg(16)->Arg(64)->Arg(128);

void BM_FusedMaskedSoftmax(benchmark::State& state) {
  // Causal-masked softmax over attention scores, fused mask + softmax pass.
  const auto t = state.range(0);
  constexpr std::int64_t kB = 4;
  constexpr std::int64_t kHeads = 4;
  Rng rng(9);
  Tensor base = Tensor::randn({kB, kHeads, t, t}, rng);
  Tensor scores(base.shape());
  for (auto _ : state) {
    state.PauseTiming();
    std::copy_n(base.data(), base.numel(), scores.data());
    state.ResumeTiming();
    ops::attention_masked_softmax(scores, kB, kHeads, t, t, /*causal=*/true,
                                  /*key_mask=*/nullptr);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * base.numel());
}
BENCHMARK(BM_FusedMaskedSoftmax)->Arg(64)->Arg(128);

void BM_Softmax(benchmark::State& state) {
  Rng rng(3);
  Tensor x = Tensor::randn({state.range(0), 128}, rng);
  for (auto _ : state) {
    Tensor y = ops::softmax_lastdim(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_Softmax)->Arg(64)->Arg(512);

void BM_LayerNorm(benchmark::State& state) {
  Rng rng(4);
  Tensor x = Tensor::randn({state.range(0), 128}, rng);
  Tensor gamma = Tensor::full({128}, 1.0F);
  Tensor beta = Tensor::zeros({128});
  for (auto _ : state) {
    Tensor y = ops::layernorm(x, gamma, beta, 1e-5F, nullptr);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_LayerNorm)->Arg(64)->Arg(512);

void BM_AttentionForward(benchmark::State& state) {
  Rng rng(5);
  nn::MultiHeadAttention attn("bench", 64, 4, rng);
  attn.set_context_enabled(false);
  Tensor x = Tensor::randn({4, state.range(0), 64}, rng);
  for (auto _ : state) {
    Tensor y = attn.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_AttentionForward)->Arg(16)->Arg(64);

void BM_EncoderLayerForwardBackward(benchmark::State& state) {
  Rng rng(6);
  nn::TransformerEncoderLayer layer("bench", 64, 4, 256, rng);
  Tensor x = Tensor::randn({4, 16, 64}, rng);
  for (auto _ : state) {
    Tensor y = layer.forward(x);
    Tensor dx = layer.backward(Tensor::zeros(y.shape()));
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_EncoderLayerForwardBackward);

void BM_EncoderLayerForwardOnly(benchmark::State& state) {
  // Forward-only (context disabled) — what the frozen backbone costs under
  // Parallel Adapters.
  Rng rng(7);
  nn::TransformerEncoderLayer layer("bench", 64, 4, 256, rng);
  layer.set_context_enabled(false);
  Tensor x = Tensor::randn({4, 16, 64}, rng);
  for (auto _ : state) {
    Tensor y = layer.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_EncoderLayerForwardOnly);

// Cost of one PAC_TRACE_SCOPE when tracing is off (Arg 0: the default
// state of every instrumented hot path — a relaxed atomic load and an
// untouched pending-name slot) vs recording into a live ring (Arg 1).
void BM_TraceScope(benchmark::State& state) {
  const bool enabled = state.range(0) == 1;
  std::unique_ptr<obs::TraceSession> session;
  if (enabled) {
    session = std::make_unique<obs::TraceSession>();
  }
  std::int64_t x = 0;
  for (auto _ : state) {
    PAC_TRACE_SCOPE("bench_span", x);
    benchmark::DoNotOptimize(++x);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceScope)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
