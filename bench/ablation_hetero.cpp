// Ablation — heterogeneity-aware planning.
// A realistic smart home mixes device generations; the paper's DP (Eq. 2)
// is formulated over an ordered device set, which this implementation
// exploits: the planner shifts stage boundaries toward the fast devices.
// Heterogeneity-aware planning has two levers: stage boundaries shift
// toward fast devices, and mixed-speed groups get weight-proportional
// micro-batch ownership (pipeline::micro_owner_indices).  This bench
// compares the aware plan against planning that wrongly assumes a
// homogeneous cluster, on clusters with an increasingly slow tail.
#include <cstdio>

#include "planner/planner.hpp"
#include "sim/event_sim.hpp"

int main() {
  using namespace pac;
  const auto cfg_model = model::t5_base();
  const auto tc = model::paper_technique_config(
      model::Technique::kParallelAdapters);

  std::printf("Ablation — heterogeneity-aware planning (T5-Base, Parallel "
              "Adapters, 4 devices, batch 16, Jetson scale)\n\n");
  std::printf("%-28s | %10s %10s | %s\n", "cluster (relative speeds)",
              "aware s", "blind s", "aware plan");
  for (double slow : {1.0, 0.5, 0.25}) {
    const std::vector<double> scales{1.0, 1.0, slow, slow};
    auto input = planner::analytic_planner_input(
        cfg_model, tc, costmodel::SeqShape{1, 128, 16},
        costmodel::jetson_nano(), costmodel::edge_lan(), 4, 16, true);

    // Heterogeneity-aware: planner sees the true scales.
    auto aware_input = input;
    aware_input.device_scales = scales;
    auto aware = planner::plan_hybrid(aware_input);

    // Blind: planner assumes homogeneous devices; the real cluster then
    // executes its plan with the true scales.
    auto blind = planner::plan_hybrid(input);

    auto simulate = [&](const pipeline::ParallelPlan& plan) {
      sim::SimConfig sim_cfg;
      sim_cfg.input = input;
      sim_cfg.input.device_scales = scales;
      sim_cfg.plan = plan;
      return sim::simulate_minibatch(sim_cfg).minibatch_seconds;
    };
    const double t_aware = simulate(aware.plan);
    const double t_blind = simulate(blind.plan);

    std::string sizes;
    for (const auto& st : aware.plan.stages) {
      if (!sizes.empty()) sizes += "+";
      sizes += std::to_string(st.devices.size());
      sizes += "x" + std::to_string(st.block_end - st.block_begin);
    }
    char label[64];
    std::snprintf(label, sizeof(label), "2 fast + 2 @ %.2fx", slow);
    std::printf("%-28s | %10.2f %10.2f | stages %s%s\n", label, t_aware,
                t_blind, sizes.c_str(),
                t_aware < t_blind - 1e-9 ? "  <- aware wins" : "");
  }
  std::printf("\nReading: as the slow tail worsens, the aware planner "
              "re-balances stage boundaries/groups and beats the "
              "homogeneous assumption.\n");
  return 0;
}
