// Distributed-runtime micro-benchmarks (google-benchmark): transport
// point-to-point, ring vs naive AllReduce (ablation §5 of DESIGN.md), and
// 1F1B vs GPipe end-to-end on the executed engine.
#include <benchmark/benchmark.h>

#include <numeric>

#include "data/dataset.hpp"
#include "dist/cluster.hpp"
#include "pipeline/runners.hpp"

namespace {

using namespace pac;

void BM_TransportPingPong(benchmark::State& state) {
  dist::Transport transport(2, dist::LinkModel{});
  const auto n = state.range(0);
  Rng rng(1);
  Tensor payload = Tensor::randn({n}, rng);
  for (auto _ : state) {
    transport.send(0, 1, 0, payload.clone());
    Tensor r = transport.recv(1, 0, 0);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetBytesProcessed(state.iterations() * n * 4);
}
BENCHMARK(BM_TransportPingPong)->Arg(1024)->Arg(1 << 16);

template <dist::AllReduceAlgo Algo>
void BM_AllReduce(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const auto n = state.range(1);
  dist::EdgeCluster cluster(world,
                            std::numeric_limits<std::uint64_t>::max());
  std::vector<int> group(static_cast<std::size_t>(world));
  std::iota(group.begin(), group.end(), 0);
  for (auto _ : state) {
    cluster.run([&](dist::DeviceContext& ctx) {
      Tensor t = Tensor::full({n}, 1.0F);
      ctx.comm.allreduce_sum(t, group, 100, Algo);
      benchmark::DoNotOptimize(t.data());
    });
  }
  state.SetBytesProcessed(state.iterations() * world * n * 4);
}
BENCHMARK(BM_AllReduce<dist::AllReduceAlgo::kRing>)
    ->Args({4, 1 << 14})
    ->Args({8, 1 << 14})
    ->Args({4, 1 << 18});
BENCHMARK(BM_AllReduce<dist::AllReduceAlgo::kNaive>)
    ->Args({4, 1 << 14})
    ->Args({8, 1 << 14})
    ->Args({4, 1 << 18});

void run_schedule_bench(benchmark::State& state,
                        pipeline::ScheduleKind schedule) {
  data::DatasetConfig dcfg;
  dcfg.task = data::GlueTask::kSst2;
  dcfg.train_samples = 32;
  dcfg.eval_samples = 8;
  dcfg.seq_len = 8;
  dcfg.vocab = 32;
  data::SyntheticGlueDataset ds(dcfg);
  auto factory = [] {
    model::TechniqueConfig tc;
    tc.technique = model::Technique::kParallelAdapters;
    tc.pa_reduction = 4;
    return std::make_unique<model::Model>(model::tiny(4, 16, 2, 32, 8), tc,
                                          model::TaskSpec{}, 12);
  };
  for (auto _ : state) {
    dist::EdgeCluster cluster(2,
                              std::numeric_limits<std::uint64_t>::max());
    pipeline::RunConfig cfg;
    cfg.plan = pipeline::ParallelPlan::pure_pipeline(6, 2, 4);
    cfg.schedule = schedule;
    cfg.batch_size = 16;
    cfg.epochs = 1;
    cfg.run_eval = false;
    auto r = run_training(cluster, ds, factory, cfg);
    benchmark::DoNotOptimize(r.epoch_losses.data());
  }
}

void BM_Pipeline1F1B(benchmark::State& state) {
  run_schedule_bench(state, pipeline::ScheduleKind::k1F1B);
}
BENCHMARK(BM_Pipeline1F1B);

void BM_PipelineGPipe(benchmark::State& state) {
  run_schedule_bench(state, pipeline::ScheduleKind::kGPipe);
}
BENCHMARK(BM_PipelineGPipe);

}  // namespace

BENCHMARK_MAIN();
