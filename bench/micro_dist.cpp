// Distributed-runtime micro-benchmarks (google-benchmark): transport
// point-to-point, ring vs naive AllReduce (ablation §5 of DESIGN.md),
// 1F1B vs GPipe end-to-end on the executed engine, and the BM_Comm*
// overlap pair — sync vs async engine on a simulated 128 Mbps link, and
// cold vs prefetched cache fetches (recorded to BENCH_comm.json by
// scripts/bench.sh --suite comm).
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <numeric>
#include <thread>

#include "cache/activation_cache.hpp"
#include "core/session.hpp"
#include "data/dataset.hpp"
#include "dist/cluster.hpp"
#include "dist/transport_factories.hpp"
#include "elastic/health.hpp"
#include "obs/trace.hpp"
#include "pipeline/runners.hpp"
#include "planner/planner.hpp"
#include "tensor/quant.hpp"

namespace {

using namespace pac;

void BM_TransportPingPong(benchmark::State& state) {
  dist::InProcTransport transport(2, dist::LinkModel{});
  const auto n = state.range(0);
  Rng rng(1);
  Tensor payload = Tensor::randn({n}, rng);
  for (auto _ : state) {
    transport.send(0, 1, 0, payload.clone());
    Tensor r = transport.recv(1, 0, 0);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetBytesProcessed(state.iterations() * n * 4);
}
BENCHMARK(BM_TransportPingPong)->Arg(1024)->Arg(1 << 16);

template <dist::AllReduceAlgo Algo>
void BM_AllReduce(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const auto n = state.range(1);
  dist::EdgeCluster cluster(world,
                            std::numeric_limits<std::uint64_t>::max());
  std::vector<int> group(static_cast<std::size_t>(world));
  std::iota(group.begin(), group.end(), 0);
  for (auto _ : state) {
    cluster.run([&](dist::DeviceContext& ctx) {
      Tensor t = Tensor::full({n}, 1.0F);
      ctx.comm.allreduce_sum(t, group, 100, Algo);
      benchmark::DoNotOptimize(t.data());
    });
  }
  state.SetBytesProcessed(state.iterations() * world * n * 4);
}
BENCHMARK(BM_AllReduce<dist::AllReduceAlgo::kRing>)
    ->Args({4, 1 << 14})
    ->Args({8, 1 << 14})
    ->Args({4, 1 << 18});
BENCHMARK(BM_AllReduce<dist::AllReduceAlgo::kNaive>)
    ->Args({4, 1 << 14})
    ->Args({8, 1 << 14})
    ->Args({4, 1 << 18});

void run_schedule_bench(benchmark::State& state,
                        pipeline::ScheduleKind schedule) {
  data::DatasetConfig dcfg;
  dcfg.task = data::GlueTask::kSst2;
  dcfg.train_samples = 32;
  dcfg.eval_samples = 8;
  dcfg.seq_len = 8;
  dcfg.vocab = 32;
  data::SyntheticGlueDataset ds(dcfg);
  auto factory = [] {
    model::TechniqueConfig tc;
    tc.technique = model::Technique::kParallelAdapters;
    tc.pa_reduction = 4;
    return std::make_unique<model::Model>(model::tiny(4, 16, 2, 32, 8), tc,
                                          model::TaskSpec{}, 12);
  };
  for (auto _ : state) {
    dist::EdgeCluster cluster(2,
                              std::numeric_limits<std::uint64_t>::max());
    pipeline::RunConfig cfg;
    cfg.plan = pipeline::ParallelPlan::pure_pipeline(6, 2, 4);
    cfg.schedule = schedule;
    cfg.batch_size = 32;
    cfg.epochs = 1;
    cfg.run_eval = false;
    auto r = run_training(cluster, ds, factory, cfg);
    benchmark::DoNotOptimize(r.epoch_losses.data());
  }
}

void BM_Pipeline1F1B(benchmark::State& state) {
  run_schedule_bench(state, pipeline::ScheduleKind::k1F1B);
}
BENCHMARK(BM_Pipeline1F1B);

void BM_PipelineGPipe(benchmark::State& state) {
  run_schedule_bench(state, pipeline::ScheduleKind::kGPipe);
}
BENCHMARK(BM_PipelineGPipe);

// ---------------------------------------------------------------------------
// Compute/comm overlap: one 1F1B training epoch on a simulated 128 Mbps /
// 1 ms edge link, synchronous engine (Arg 0) vs async engine (Arg 1).
// Each iteration runs the same one-mini-batch schedule, so the per-
// iteration ratio IS the per-mini-batch pipeline wall-clock ratio.
//
// Shape rationale: the async win is the heavy stage's inline send sleeps
// coming off its critical path, so the split is deliberately unbalanced
// (13 blocks vs 1) the way PAC's planner splits for heterogeneous edge
// devices, and the model is sized so per-micro compute and per-micro
// link time are comparable (a toy model under a 1 ms link is pure comm
// and nothing can hide it).  Single-device stages keep the bench honest
// on small CI hosts: with device groups sharing one core, a co-located
// rank's compute fills the sync engine's sleep gaps at the wall-clock
// level and both modes converge to the total-compute floor.
// ---------------------------------------------------------------------------

enum class CommBackend { kInProc, kTcpLoopback };

void run_comm_pipeline_bench(benchmark::State& state, bool async_comm,
                             CommBackend backend, double shape_mbps = 0.0) {
  data::DatasetConfig dcfg;
  dcfg.task = data::GlueTask::kSst2;
  dcfg.train_samples = 32;
  dcfg.eval_samples = 8;
  dcfg.seq_len = 32;
  dcfg.vocab = 32;
  data::SyntheticGlueDataset ds(dcfg);
  auto factory = [] {
    model::TechniqueConfig tc;
    tc.technique = model::Technique::kParallelAdapters;
    tc.pa_reduction = 4;
    return std::make_unique<model::Model>(model::tiny(12, 64, 2, 32, 32), tc,
                                          model::TaskSpec{}, 12);
  };
  pipeline::StageAssignment s0{0, 13, {0}, {}};
  pipeline::StageAssignment s1{13, 14, {1}, {}};
  dist::LinkModel lan;  // paper testbed: 128 Mbps, 1 ms — slept for real
  lan.simulate_delay = true;
  dist::FaultPlan faults;
  if (shape_mbps > 0.0) {
    // WAN token-bucket shaping on top of the modeled link: bursts ride the
    // bucket, sustained traffic is throttled to the configured rate.
    faults.shape_bandwidth_bps = shape_mbps * 1e6;
    faults.shape_burst_bytes = 16 * 1024;
  }
  for (auto _ : state) {
    dist::EdgeCluster cluster(2, std::numeric_limits<std::uint64_t>::max(),
                              lan);
    if (backend == CommBackend::kTcpLoopback) {
      cluster.set_transport_factory(dist::make_tcp_loopback_factory());
    }
    cluster.set_fault_plan(faults);
    pipeline::RunConfig cfg;
    cfg.plan.stages = {s0, s1};
    cfg.plan.num_micro_batches = 16;
    cfg.async_comm = async_comm;
    cfg.batch_size = 32;
    cfg.epochs = 1;
    cfg.run_eval = false;
    auto r = run_training(cluster, ds, factory, cfg);
    benchmark::DoNotOptimize(r.epoch_losses.data());
  }
  state.SetItemsProcessed(state.iterations());  // one mini-batch per epoch
}

void BM_CommPipelineMiniBatch(benchmark::State& state) {
  run_comm_pipeline_bench(state, state.range(0) == 1, CommBackend::kInProc);
}
// UseRealTime: nearly all of an iteration is link sleeps and cross-thread
// waits, so CPU time would both misreport the result and make the harness
// run hundreds of iterations to fill --benchmark_min_time.
BENCHMARK(BM_CommPipelineMiniBatch)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The same mini-batch over real TCP loopback sockets (every rank its own
// endpoint, frames through the kernel): the delta against the matching
// BM_CommPipelineMiniBatch arg is the wire cost of the transport backend —
// framing, syscalls, loopback copies — on top of the modeled link.
// range(1) is WAN token-bucket shaping in Mbps (0 = unshaped): the shaped
// rows price the same mini-batch on a constrained cross-machine link, and
// the async-vs-sync delta shows how much of that cost overlap hides.
void BM_CommPipelineMiniBatchTcp(benchmark::State& state) {
  run_comm_pipeline_bench(state, state.range(0) == 1,
                          CommBackend::kTcpLoopback,
                          static_cast<double>(state.range(1)));
}
BENCHMARK(BM_CommPipelineMiniBatchTcp)
    ->ArgNames({"async", "shape_mbps"})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 64})
    ->Args({1, 64})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Same async workload with a live TraceSession + counters.  Compare
// against BM_CommPipelineMiniBatch/1 for the observability-*enabled* cost;
// the disabled cost is BM_CommPipelineMiniBatch/1 itself against the
// tracked pre-instrumentation BENCH_comm.json baseline (instrumentation is
// always compiled in; the acceptance bar is <2% when disabled).
void BM_CommPipelineMiniBatchObs(benchmark::State& state) {
  data::DatasetConfig dcfg;
  dcfg.task = data::GlueTask::kSst2;
  dcfg.train_samples = 32;
  dcfg.eval_samples = 8;
  dcfg.seq_len = 32;
  dcfg.vocab = 32;
  data::SyntheticGlueDataset ds(dcfg);
  auto factory = [] {
    model::TechniqueConfig tc;
    tc.technique = model::Technique::kParallelAdapters;
    tc.pa_reduction = 4;
    return std::make_unique<model::Model>(model::tiny(12, 64, 2, 32, 32), tc,
                                          model::TaskSpec{}, 12);
  };
  pipeline::StageAssignment s0{0, 13, {0}, {}};
  pipeline::StageAssignment s1{13, 14, {1}, {}};
  dist::LinkModel lan;
  lan.simulate_delay = true;
  obs::TraceSession::Options opts;
  opts.path = "/tmp/pac_bench_obs_trace.json";
  obs::TraceSession trace(opts);  // one session spans all iterations
  for (auto _ : state) {
    dist::EdgeCluster cluster(2, std::numeric_limits<std::uint64_t>::max(),
                              lan);
    pipeline::RunConfig cfg;
    cfg.plan.stages = {s0, s1};
    cfg.plan.num_micro_batches = 16;
    cfg.async_comm = true;
    cfg.batch_size = 32;
    cfg.epochs = 1;
    cfg.run_eval = false;
    auto r = run_training(cluster, ds, factory, cfg);
    benchmark::DoNotOptimize(r.epoch_losses.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CommPipelineMiniBatchObs)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Cache prefetch: phase-2 step loop against a disk-backed shard, cold
// fetches (Arg 0) vs double-buffered prefetch of the next batch (Arg 1).
// The sleep stands in for the adapter-only compute the reload overlaps.
// ---------------------------------------------------------------------------

void BM_CommCachePrefetch(benchmark::State& state) {
  const bool prefetch = state.range(0) == 1;
  const std::string dir = "/tmp/pac_bench_comm_prefetch";
  std::filesystem::remove_all(dir);
  cache::CacheConfig ccfg;
  ccfg.num_blocks = 3;
  ccfg.disk_backed = true;
  ccfg.directory = dir;
  cache::ActivationCache cache(ccfg);
  Rng rng(7);
  constexpr std::int64_t kSamples = 32;
  constexpr std::int64_t kBatch = 8;
  for (std::int64_t s = 0; s < kSamples; ++s) {
    for (std::int64_t b = 0; b < ccfg.num_blocks; ++b) {
      cache.put_block(s, b, Tensor::randn({64, 256}, rng));
    }
  }
  std::vector<std::vector<std::int64_t>> batches;
  for (std::int64_t begin = 0; begin < kSamples; begin += kBatch) {
    std::vector<std::int64_t> ids(static_cast<std::size_t>(kBatch));
    std::iota(ids.begin(), ids.end(), begin);
    batches.push_back(std::move(ids));
  }
  for (auto _ : state) {
    for (std::size_t i = 0; i < batches.size(); ++i) {
      if (prefetch && i + 1 < batches.size()) {
        cache.prefetch(batches[i + 1]);
      }
      auto blocks = cache.fetch(batches[i]);
      benchmark::DoNotOptimize(blocks.data());
      // Stand-in for the side-network fwd+bwd of one cached step.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batches.size()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CommCachePrefetch)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Quantized cache codec: encode + decode of one cached activation block
// (the same [64, 256] shape the prefetch bench stores) per storage dtype.
// Arg is the quant::Dtype value — 0 fp32 (repack floor), 1 fp16, 2 int8 —
// and bytes/s counts fp32 bytes through the codec, so the fp16/int8 rows
// are the per-block conversion cost the compressed cache pays on every
// record + fetch.
// ---------------------------------------------------------------------------

void BM_CacheQuantizeRoundTrip(benchmark::State& state) {
  const auto dtype = static_cast<quant::Dtype>(state.range(0));
  Rng rng(11);
  Tensor block = Tensor::randn({64, 256}, rng);
  std::vector<float> out(static_cast<std::size_t>(block.numel()));
  for (auto _ : state) {
    quant::QTensor q = quant::quantize_rows(block.data(), block.shape(),
                                            dtype);
    quant::dequantize_into(q, out.data());
    benchmark::DoNotOptimize(q.data.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * block.numel() * 4);
  state.SetLabel(quant::dtype_name(dtype));
}
BENCHMARK(BM_CacheQuantizeRoundTrip)->Arg(0)->Arg(1)->Arg(2);

// ---------------------------------------------------------------------------
// The compressed cache end-to-end: a full PAC session per storage dtype —
// phase 1 records into quantized shards, redistribution ships compressed
// frames, phase 2 trains from dequantized fetches.  Two counters carry the
// acceptance numbers into BENCH_comm.json: cache_bytes (resident shard
// bytes after redistribution) and redist_bytes (payload bytes the
// all-to-all actually sent).  fp16 must show >= 1.9x less of both than the
// Arg 0 fp32 baseline; int8 lands near 3.5x (its scales cost one f32 per
// [T, H] row).
// ---------------------------------------------------------------------------

void BM_CommPipelineMiniBatchQuantCache(benchmark::State& state) {
  const auto dtype = static_cast<quant::Dtype>(state.range(0));
  data::DatasetConfig dcfg;
  dcfg.task = data::GlueTask::kSst2;
  dcfg.train_samples = 32;
  dcfg.eval_samples = 8;
  dcfg.seq_len = 32;
  dcfg.vocab = 32;
  data::SyntheticGlueDataset ds(dcfg);
  core::SessionConfig cfg;
  cfg.model = model::tiny(4, 64, 2, 32, 32);
  cfg.technique.technique = model::Technique::kParallelAdapters;
  cfg.technique.pa_reduction = 4;
  cfg.batch_size = 16;
  cfg.num_micro_batches = 4;
  cfg.epochs = 3;
  cfg.run_eval = false;
  cfg.cache_dtype = dtype;
  std::uint64_t cache_bytes = 0;
  std::uint64_t redist_bytes = 0;
  for (auto _ : state) {
    dist::EdgeCluster cluster(2, std::numeric_limits<std::uint64_t>::max());
    core::Session session(cluster, ds, cfg);
    core::SessionReport report = session.run();
    cache_bytes = report.cache_bytes_total;
    redist_bytes = report.redistribution.payload_bytes_sent;
    benchmark::DoNotOptimize(report.epoch_losses.data());
  }
  state.counters["cache_bytes"] = static_cast<double>(cache_bytes);
  state.counters["redist_bytes"] = static_cast<double>(redist_bytes);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(quant::dtype_name(dtype));
}
BENCHMARK(BM_CommPipelineMiniBatchQuantCache)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// BM_ElasticReplan: the full straggler-reaction path the elastic runtime
// pays at a mini-batch boundary — feed the HealthMonitor until it issues a
// verdict, then re-run the planner DP with the observed speeds folded in.
// This is the detour the session takes between unwinding the old plan and
// launching the new one, so it bounds the re-plan latency the chaos tests
// hide inside their wall clock.
// ---------------------------------------------------------------------------

void BM_ElasticReplan(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const std::int64_t blocks = state.range(1);
  planner::PlannerInput input;
  for (std::int64_t i = 0; i < blocks; ++i) {
    planner::BlockProfile b;
    b.name = "block" + std::to_string(i);
    b.t_fwd = 1e-3;
    b.t_bwd = 2e-3;
    b.param_bytes = 64 * 1024;
    b.trainable_bytes = 4 * 1024;
    b.activation_bytes = 8 * 1024;
    b.fwd_msg_bytes = 4 * 1024;
    b.bwd_msg_bytes = 512;
    input.blocks.push_back(b);
  }
  input.num_devices = world;
  input.num_micro_batches = 8;

  elastic::ElasticPolicy policy;
  policy.enabled = true;
  policy.straggler_ratio = 0.5;
  policy.straggler_window = 2;
  policy.warmup_minibatches = 1;

  std::vector<int> group(static_cast<std::size_t>(world));
  std::iota(group.begin(), group.end(), 0);

  for (auto _ : state) {
    elastic::HealthMonitor monitor(policy, world, /*verdict_budget=*/1);
    monitor.set_groups({group});
    std::optional<elastic::StragglerVerdict> verdict;
    for (int mb = 0; !verdict; ++mb) {
      for (int r = 0; r < world && !verdict; ++r) {
        // Rank world-1 runs 8x slow; everyone else at the profiled speed.
        const double seconds = r == world - 1 ? 8e-3 : 1e-3;
        verdict = monitor.record_minibatch(r, seconds, 8);
      }
    }
    std::vector<double> observed(static_cast<std::size_t>(world), 1.0);
    for (const auto& [rank, scale] : verdict->observed_scales) {
      observed[static_cast<std::size_t>(rank)] = scale;
    }
    auto est = planner::replan_hybrid(input, observed);
    benchmark::DoNotOptimize(est.feasible);
    benchmark::DoNotOptimize(est.minibatch_seconds);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ElasticReplan)
    ->Args({4, 8})
    ->Args({8, 26})  // bart-large-scale block count
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
