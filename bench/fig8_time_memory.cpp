// Figure 8 — time and memory efficiency of Parallel Adapters at the edge.
// Setup per paper §6.3: 8 devices; Parallel Adapters run data-parallel
// with the activation cache; other techniques run hybrid parallelism
// without 1F1B; batch 16, seq 128; Jetson scale via the simulator.
//
// (a) average per-sample training time   (paper: P.A. −31.9 % vs Full;
//     with cache −96.4 %)
// (b) peak per-device total memory       (paper: P.A. −25.3 %; with cache
//     −74.6 %)
#include <cstdio>

#include "baselines/baselines.hpp"
#include "common/timer.hpp"
#include "core/session.hpp"
#include "sim/scenarios.hpp"

namespace {

using namespace pac;
using model::Technique;

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

struct Row {
  const char* name;
  double sec_per_sample;
  double peak_gib;
};

Row run_row(const char* name, Technique technique, bool pac_cache) {
  sim::ScenarioConfig cfg;
  cfg.model = model::t5_base();
  cfg.technique = technique;
  cfg.task = data::GlueTask::kMrpc;  // 3 epochs, cache engages
  cfg.num_devices = 8;
  cfg.pac_use_cache = pac_cache;
  auto r = sim::simulate_system(sim::SystemKind::kPac, cfg);
  Row row{name, 0.0, 0.0};
  if (r.oom) {
    row.sec_per_sample = -1.0;
    return row;
  }
  row.sec_per_sample = r.seconds_per_sample;
  std::uint64_t peak = 0;
  for (std::uint64_t m : r.peak_memory_per_device) peak = std::max(peak, m);
  // Under the cached phase the steady-state resident set shrinks further;
  // report the phase-2 footprint for the cached row.
  if (pac_cache && technique == Technique::kParallelAdapters) {
    const auto mem = costmodel::standalone_memory(
        cfg.model, model::paper_technique_config(technique),
        costmodel::SeqShape{16, 128, 16}, true, /*cached_phase=*/true);
    peak = mem.total();
  }
  row.peak_gib = static_cast<double>(peak) / kGiB;
  return row;
}

}  // namespace

int main() {
  std::printf("Figure 8 — technique efficiency at the edge (T5-Base, 8 "
              "devices, batch 16, seq 128, simulated Jetson scale)\n\n");
  const Row rows[] = {
      run_row("Full", Technique::kFull, false),
      run_row("Adapters", Technique::kAdapters, false),
      run_row("LoRA", Technique::kLora, false),
      run_row("P.A. (no cache)", Technique::kParallelAdapters, false),
      run_row("P.A. + cache", Technique::kParallelAdapters, true),
  };

  std::printf("(a) average per-sample training time\n");
  std::printf("%-18s %14s %14s\n", "Technique", "s/sample",
              "vs Full");
  const double full_t = rows[0].sec_per_sample;
  for (const Row& r : rows) {
    if (r.sec_per_sample < 0) {
      std::printf("%-18s %14s\n", r.name, "OOM");
      continue;
    }
    std::printf("%-18s %14.4f %+13.1f%%\n", r.name, r.sec_per_sample,
                100.0 * (r.sec_per_sample - full_t) / full_t);
  }
  std::printf("paper: P.A. -31.9%% vs full; with cache -96.4%%\n\n");

  std::printf("(b) peak per-device memory\n");
  std::printf("%-18s %14s %14s\n", "Technique", "GiB", "vs Full");
  const double full_m = rows[0].peak_gib;
  for (const Row& r : rows) {
    if (r.sec_per_sample < 0) {
      std::printf("%-18s %14s\n", r.name, "OOM");
      continue;
    }
    std::printf("%-18s %14.2f %+13.1f%%\n", r.name, r.peak_gib,
                100.0 * (r.peak_gib - full_m) / full_m);
  }
  std::printf("paper: P.A. -25.3%%; with cache -74.6%%\n");

  // ---- executed counterpart: real wall-clock at tiny scale ----
  std::printf("\n(executed on this machine: tiny model, 2 devices, real "
              "wall-clock per sample)\n");
  data::DatasetConfig dcfg;
  dcfg.task = data::GlueTask::kMrpc;
  dcfg.train_samples = 96;
  dcfg.eval_samples = 16;
  dcfg.seq_len = 16;
  dcfg.vocab = 64;
  data::SyntheticGlueDataset ds(dcfg);
  const model::ModelConfig tiny_cfg = model::tiny(6, 48, 2, 64, 16);

  auto run_technique = [&](Technique technique,
                           bool use_cache) -> double {
    const int epochs = 3;
    if (!use_cache) {
      dist::EdgeCluster cluster(2,
                                std::numeric_limits<std::uint64_t>::max());
      baselines::BaselineConfig cfg;
      cfg.system = baselines::System::kEddl;
      cfg.technique = technique;
      cfg.batch_size = 16;
      cfg.num_micro_batches = 2;
      cfg.epochs = epochs;
      cfg.run_eval = false;
      auto factory = [technique, tiny_cfg] {
        model::TechniqueConfig tc;
        tc.technique = technique;
        tc.adapter_reduction = 4;
        tc.pa_reduction = 4;
        tc.lora = nn::LoraSpec{4, 8.0F};
        return std::make_unique<model::Model>(tiny_cfg, tc,
                                              model::TaskSpec{}, 99);
      };
      WallTimer t;
      run_baseline(cluster, ds, factory, cfg);
      return t.seconds() / (epochs * ds.train_size());
    }
    dist::EdgeCluster cluster(2,
                              std::numeric_limits<std::uint64_t>::max());
    core::SessionConfig cfg;
    cfg.model = tiny_cfg;
    cfg.technique.technique = Technique::kParallelAdapters;
    cfg.technique.pa_reduction = 4;
    cfg.batch_size = 16;
    cfg.num_micro_batches = 2;
    cfg.epochs = epochs;
    cfg.run_eval = false;
    core::Session session(cluster, ds, cfg);
    WallTimer t;
    session.run();
    return t.seconds() / (epochs * ds.train_size());
  };

  struct ExecRow {
    const char* name;
    Technique technique;
    bool cache;
  };
  const ExecRow exec_rows[] = {
      {"Full", Technique::kFull, false},
      {"Adapters", Technique::kAdapters, false},
      {"LoRA", Technique::kLora, false},
      {"P.A. (no cache)", Technique::kParallelAdapters, false},
      {"P.A. + cache", Technique::kParallelAdapters, true},
  };
  double exec_full = 0.0;
  for (const auto& row : exec_rows) {
    const double s = run_technique(row.technique, row.cache);
    if (row.technique == Technique::kFull) exec_full = s;
    std::printf("%-18s %11.4f ms/sample %+13.1f%% vs Full\n", row.name,
                1e3 * s, 100.0 * (s - exec_full) / exec_full);
  }
  return 0;
}
