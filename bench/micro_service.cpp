// Multi-tenant service micro-benchmarks (google-benchmark): dispatcher
// control-plane throughput (submit -> admit -> complete round trips on a
// manual-completion dispatcher) and the fleet-packing payoff — the same
// 16-job burst from a seeded load generator run packed (jobs abreast on
// disjoint device groups) versus serialized one job at a time.  Recorded
// to BENCH_service.json by scripts/bench.sh --suite service; the makespan
// pair is the counter-backed proof that packing beats serial dispatch.
#include <benchmark/benchmark.h>

#include "service/dispatcher.hpp"
#include "service/load_generator.hpp"

namespace {

using namespace pac;

constexpr std::uint64_t kMiB = 1ULL << 20;

// One full control-plane round trip per iteration: submit into a
// 16-device fleet, admission carves + charges the ledger, manual
// completion releases and re-schedules.  No payload runs, so this prices
// the dispatcher itself.
void BM_ServiceDispatch(benchmark::State& state) {
  service::Fleet fleet(16, 256 * kMiB);
  service::DispatcherConfig cfg;
  cfg.manual_completion = true;
  service::JobDispatcher dispatcher(fleet, cfg);

  service::JobSpec spec;
  spec.name = "probe";
  spec.request.min_devices = 2;
  spec.request.max_devices = 4;
  spec.request.bytes_per_device = 32 * kMiB;
  spec.work_seconds = 1.0;

  for (auto _ : state) {
    const service::JobId id = dispatcher.submit(spec);
    dispatcher.complete(id, {});
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["admitted"] =
      static_cast<double>(dispatcher.stats().admitted);
}
BENCHMARK(BM_ServiceDispatch);

// The packing proof: a 16-job burst drawn from one seeded generator, run
// on a 4-device fleet either packed (Arg 0: jobs admitted abreast onto
// disjoint groups) or serialized (Arg 1: max_concurrent_jobs = 1).  The
// simulated payloads sleep real time, so the measured wall clock IS the
// makespan; the dispatcher's own makespan gauge is exported alongside as
// the counter proof.
void BM_ServiceMakespan(benchmark::State& state) {
  const bool serial = state.range(0) != 0;

  service::LoadGenConfig gen_cfg;
  gen_cfg.seed = 0xBE7C;
  gen_cfg.min_devices_max = 2;
  gen_cfg.extra_devices_max = 1;
  gen_cfg.bytes_min = 1 * kMiB;
  gen_cfg.bytes_max = 16 * kMiB;
  gen_cfg.work_min_s = 0.5;
  gen_cfg.work_max_s = 2.0;
  gen_cfg.reject_if_busy_fraction = 0.0;  // every job must run
  const std::vector<service::Arrival> burst =
      service::LoadGenerator(gen_cfg).generate(16);

  double last_makespan = 0.0;
  for (auto _ : state) {
    service::Fleet fleet(4, 64 * kMiB);
    service::DispatcherConfig cfg;
    cfg.num_workers = 4;
    cfg.sim_time_scale = 2e-3;  // 1 simulated second sleeps 2 ms
    cfg.max_concurrent_jobs = serial ? 1 : 0;
    service::JobDispatcher dispatcher(fleet, cfg);
    for (const service::Arrival& a : burst) dispatcher.submit(a.spec);
    dispatcher.wait_idle();
    const service::DispatcherStats s = dispatcher.stats();
    if (s.completed != 16) state.SkipWithError("burst did not complete");
    last_makespan = s.makespan_seconds;
  }
  state.counters["makespan_s"] = last_makespan;
  state.counters["jobs"] = 16;
}
BENCHMARK(BM_ServiceMakespan)
    ->Arg(0)  // packed
    ->Arg(1)  // serial baseline
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
