// Table 3 — final model quality parity across fine-tuning techniques.
//
// Executed training on synthetic GLUE-shaped tasks (see DESIGN.md for the
// substitution): for each of the four tasks, train Full / Adapters / LoRA
// / Parallel Adapters from the same initialization and report the task
// metric.  What must reproduce is the *parity*: Parallel Adapters lands
// within a small margin of the mean of the other three (paper: worst
// deviation -0.37 points).  Absolute values differ from the paper because
// models are tiny and tasks synthetic.
#include <cstdio>
#include <vector>

#include "baselines/baselines.hpp"
#include "data/metrics.hpp"

namespace {

using namespace pac;
using model::Technique;

double train_and_eval(data::GlueTask task, Technique technique) {
  data::DatasetConfig dcfg;
  dcfg.task = task;
  dcfg.train_samples = 192;
  dcfg.eval_samples = 96;
  dcfg.seq_len = 16;
  dcfg.vocab = 64;
  dcfg.seed = 99;
  data::SyntheticGlueDataset ds(dcfg);
  const data::TaskInfo info = ds.info();

  dist::EdgeCluster cluster(2, std::numeric_limits<std::uint64_t>::max());
  baselines::BaselineConfig cfg;
  cfg.system = baselines::System::kEddl;
  cfg.technique = technique;
  cfg.batch_size = 16;
  cfg.num_micro_batches = 2;
  cfg.epochs = 25;
  cfg.lr = 4e-3F;
  auto factory = [technique, info] {
    model::TechniqueConfig tc;
    tc.technique = technique;
    // Reductions scaled for the tiny hidden size (k=8 at h=1024 gives
    // r=128; k=4 at h=32 keeps the side network proportionally capable).
    tc.adapter_reduction = 4;
    tc.pa_reduction = 4;
    tc.lora = nn::LoraSpec{4, 8.0F};
    return std::make_unique<model::Model>(
        model::tiny(4, 32, 2, 64, 16), tc,
        model::TaskSpec{info.kind, info.num_classes}, 31337);
  };
  return run_baseline(cluster, ds, factory, cfg).eval_metric;
}

}  // namespace

int main() {
  const Technique techniques[] = {Technique::kFull, Technique::kAdapters,
                                  Technique::kLora,
                                  Technique::kParallelAdapters};
  std::printf("Table 3 — quality parity on synthetic GLUE-shaped tasks "
              "(executed tiny models, 25 epochs)\n");
  std::printf("paper headline: Parallel Adapters within ±0.4 points of the "
              "mean of Full/Adapters/LoRA on real GLUE\n\n");
  std::printf("%-8s %10s %10s %10s %10s %10s %12s  %s\n", "Task", "Full",
              "Adapters", "LoRA", "P.A.", "mean", "P.A.-mean", "metric");

  double worst_dev = 0.0;
  for (data::GlueTask task : data::all_tasks()) {
    double scores[4];
    for (int i = 0; i < 4; ++i) {
      scores[i] = train_and_eval(task, techniques[i]);
    }
    const double mean = (scores[0] + scores[1] + scores[2]) / 3.0;
    const double dev = scores[3] - mean;
    if (std::abs(dev) > std::abs(worst_dev)) worst_dev = dev;
    std::printf("%-8s %10.3f %10.3f %10.3f %10.3f %10.3f %+12.3f  %s\n",
                data::task_name(task), scores[0], scores[1], scores[2],
                scores[3], mean, dev,
                data::task_info(task).metric.c_str());
  }
  std::printf("\nworst Parallel-Adapters deviation from the baseline mean: "
              "%+0.3f (paper: -0.0037 on its 0-100 scale)\n",
              worst_dev);
  return 0;
}
