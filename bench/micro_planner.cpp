// §5.1 claim — planning completes within 3 seconds on-device.
// Times the DP planner on every paper-scale model over 2-16 devices.
#include <cstdio>

#include "common/timer.hpp"
#include "planner/planner.hpp"

int main() {
  using namespace pac;
  std::printf("planner runtime (paper claim: < 3 s end to end)\n");
  double total = 0.0;
  for (const auto& cfg :
       {model::t5_base(), model::bart_large(), model::t5_large()}) {
    for (int devices : {2, 4, 8, 16}) {
      auto input = planner::analytic_planner_input(
          cfg,
          model::paper_technique_config(
              model::Technique::kParallelAdapters),
          costmodel::SeqShape{1, 128, 16}, costmodel::jetson_nano(),
          costmodel::edge_lan(), devices, 16, true);
      WallTimer t;
      auto est = planner::plan_hybrid(input);
      const double s = t.seconds();
      total += s;
      std::printf("  %-12s %2d devices: %7.3f s (%s)\n", cfg.name.c_str(),
                  devices, s,
                  est.feasible ? "feasible" : est.note.c_str());
    }
  }
  std::printf("total for all 12 configurations: %.3f s — %s\n", total,
              total < 3.0 ? "within the paper's 3 s budget"
                          : "EXCEEDS the paper's 3 s budget");
  return 0;
}
