// Table 2 — training durations (hours) for every (technique, system,
// model, dataset) cell, at Jetson scale via the event simulator.
// Setup mirrors the paper: 8 Jetson Nanos, 128 Mbps LAN, batch 16 for
// pipeline systems (per-device 16 for EDDL), seq 128; 3 epochs for
// MRPC/STS-B, 1 for SST-2/QNLI; PAC = Parallel Adapters + activation
// cache + planner-chosen hybrid parallelism.
#include <cstdio>
#include <string>

#include "sim/scenarios.hpp"

namespace {

using namespace pac;
using model::Technique;
using sim::SystemKind;

std::string cell(Technique technique, SystemKind system,
                 const model::ModelConfig& m, data::GlueTask task) {
  sim::ScenarioConfig cfg;
  cfg.model = m;
  cfg.technique = technique;
  cfg.task = task;
  cfg.num_devices = 8;
  auto r = sim::simulate_system(system, cfg);
  if (r.oom) return "OOM";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", r.total_hours);
  return buf;
}

struct PaperRow {
  const char* technique;
  const char* system;
  // T5-Base MRPC/STS-B/SST-2/QNLI, BART-Large x4, T5-Large x4.
  const char* values[12];
};

// Table 2 of the paper, for side-by-side comparison.
constexpr PaperRow kPaper[] = {
    {"Full", "Standalone", {"OOM", "OOM", "OOM", "OOM", "OOM", "OOM", "OOM",
                            "OOM", "OOM", "OOM", "OOM", "OOM"}},
    {"Full", "Eco-FL", {"0.45", "0.71", "2.74", "4.32", "2.41", "3.78",
                        "14.56", "22.98", "OOM", "OOM", "OOM", "OOM"}},
    {"Full", "EDDL", {"OOM", "OOM", "OOM", "OOM", "OOM", "OOM", "OOM",
                      "OOM", "OOM", "OOM", "OOM", "OOM"}},
    {"Adapters", "Standalone", {"1.21", "1.90", "7.29", "11.51", "OOM",
                                "OOM", "OOM", "OOM", "OOM", "OOM", "OOM",
                                "OOM"}},
    {"Adapters", "Eco-FL", {"0.39", "0.61", "2.35", "3.71", "0.54", "0.85",
                            "3.27", "5.16", "2.75", "4.31", "16.59",
                            "26.19"}},
    {"Adapters", "EDDL", {"0.34", "0.53", "2.06", "3.25", "OOM", "OOM",
                          "OOM", "OOM", "OOM", "OOM", "OOM", "OOM"}},
    {"LoRA", "Standalone", {"1.21", "1.89", "7.28", "11.49", "OOM", "OOM",
                            "OOM", "OOM", "OOM", "OOM", "OOM", "OOM"}},
    {"LoRA", "Eco-FL", {"0.41", "0.64", "2.45", "3.87", "0.55", "0.87",
                        "3.33", "5.26", "2.73", "4.28", "16.48", "26.02"}},
    {"LoRA", "EDDL", {"0.31", "0.48", "1.86", "2.94", "OOM", "OOM", "OOM",
                      "OOM", "OOM", "OOM", "OOM", "OOM"}},
    {"ParallelAdapters", "PAC", {"0.14", "0.22", "1.34", "2.12", "0.29",
                                 "0.45", "2.69", "4.25", "0.69", "1.09",
                                 "8.88", "14.02"}},
};

}  // namespace

int main() {
  const auto tasks = data::all_tasks();
  const model::ModelConfig models[] = {model::t5_base(),
                                       model::bart_large(),
                                       model::t5_large()};

  std::printf("Table 2 — training durations in hours (8 simulated Jetson "
              "Nanos; ours vs paper)\n");
  std::printf("epochs: MRPC 3, STS-B 3, SST-2 1, QNLI 1\n\n");
  std::printf("%-18s %-11s", "Technique", "System");
  for (const auto& m : models) {
    for (auto t : tasks) {
      std::printf(" %6s", data::task_name(t));
    }
    std::printf("  |");
    (void)m;
  }
  std::printf("\n");

  struct SysRow {
    Technique technique;
    SystemKind system;
    const char* tname;
    const char* sname;
  };
  const SysRow rows[] = {
      {Technique::kFull, SystemKind::kStandalone, "Full", "Standalone"},
      {Technique::kFull, SystemKind::kEcoFl, "Full", "Eco-FL"},
      {Technique::kFull, SystemKind::kEddl, "Full", "EDDL"},
      {Technique::kAdapters, SystemKind::kStandalone, "Adapters",
       "Standalone"},
      {Technique::kAdapters, SystemKind::kEcoFl, "Adapters", "Eco-FL"},
      {Technique::kAdapters, SystemKind::kEddl, "Adapters", "EDDL"},
      {Technique::kLora, SystemKind::kStandalone, "LoRA", "Standalone"},
      {Technique::kLora, SystemKind::kEcoFl, "LoRA", "Eco-FL"},
      {Technique::kLora, SystemKind::kEddl, "LoRA", "EDDL"},
      {Technique::kParallelAdapters, SystemKind::kPac, "ParallelAdapters",
       "PAC"},
  };

  for (std::size_t ri = 0; ri < std::size(rows); ++ri) {
    const auto& row = rows[ri];
    std::printf("%-18s %-11s", row.tname, row.sname);
    for (const auto& m : models) {
      for (auto t : tasks) {
        std::printf(" %6s", cell(row.technique, row.system, m, t).c_str());
      }
      std::printf("  |");
    }
    std::printf("\n  paper:          ");
    for (int c = 0; c < 12; ++c) {
      std::printf(" %6s", kPaper[ri].values[c]);
      if (c % 4 == 3) std::printf("  |");
    }
    std::printf("\n");
  }

  // Headline speedup: PAC vs the best feasible baseline on MRPC/STS-B.
  std::printf("\nheadline: PAC vs best baseline (T5-Base, MRPC, 3 epochs)\n");
  sim::ScenarioConfig cfg;
  cfg.model = model::t5_base();
  cfg.task = data::GlueTask::kMrpc;
  cfg.num_devices = 8;
  cfg.technique = Technique::kParallelAdapters;
  const auto pac = sim::simulate_system(SystemKind::kPac, cfg);
  cfg.technique = Technique::kLora;
  const auto best_baseline = sim::simulate_system(SystemKind::kEddl, cfg);
  if (!pac.oom && !best_baseline.oom) {
    std::printf("  PAC %.2f h vs EDDL+LoRA %.2f h -> %.2fx speedup "
                "(paper: up to 8.64x on cached workloads)\n",
                pac.total_hours, best_baseline.total_hours,
                best_baseline.total_hours / pac.total_hours);
  }
  return 0;
}
