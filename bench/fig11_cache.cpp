// Figure 11 — fine-tuning time with and without the activation cache,
// plus the §5.2 redistribution-overhead claim.
// MRPC, 8 simulated Jetson Nanos, Parallel Adapters, 1-10 epochs.
// Paper: per-epoch latency reduction up to 79.5 %; redistribution ≈ 8 %
// of a 3-epoch BART-Large run.
#include <cstdio>

#include "sim/scenarios.hpp"

int main() {
  using namespace pac;
  std::printf("Figure 11 — epoch time with vs without the activation cache "
              "(MRPC, 8 devices)\n\n");
  for (const auto& m :
       {model::t5_base(), model::bart_large(), model::t5_large()}) {
    sim::ScenarioConfig cfg;
    cfg.model = m;
    cfg.technique = model::Technique::kParallelAdapters;
    cfg.task = data::GlueTask::kMrpc;
    cfg.num_devices = 8;
    cfg.epochs = 10;
    auto cached = sim::simulate_system(sim::SystemKind::kPac, cfg);
    cfg.pac_use_cache = false;
    auto live = sim::simulate_system(sim::SystemKind::kPac, cfg);
    if (cached.oom || live.oom) {
      std::printf("%-12s OOM\n", m.name.c_str());
      continue;
    }
    std::printf("== %s ==\n", m.name.c_str());
    std::printf("first (hybrid) epoch: %.1fs; cached epoch: %.1fs "
                "(-%.1f%% per epoch; paper: up to -79.5%%)\n",
                cached.first_epoch_seconds, cached.later_epoch_seconds,
                100.0 * (1.0 - cached.later_epoch_seconds /
                                   live.later_epoch_seconds));
    std::printf("%7s %14s %14s %9s\n", "epochs", "no cache (h)",
                "with cache (h)", "speedup");
    for (int epochs = 1; epochs <= 10; ++epochs) {
      const double no_cache_h =
          epochs * live.first_epoch_seconds / 3600.0;
      // A single epoch never transitions to the cached phase.
      const double cache_h =
          epochs == 1
              ? cached.first_epoch_seconds / 3600.0
              : (cached.first_epoch_seconds +
                 cached.redistribution_seconds +
                 (epochs - 1) * cached.later_epoch_seconds) /
                    3600.0;
      std::printf("%7d %14.2f %14.2f %8.2fx\n", epochs, no_cache_h,
                  cache_h, no_cache_h / cache_h);
    }
    const double redist_frac =
        cached.redistribution_seconds /
        (cached.first_epoch_seconds + cached.redistribution_seconds +
         2 * cached.later_epoch_seconds);
    std::printf("redistribution: %.1fs = %.1f%% of a 3-epoch run (paper: "
                "~8%% on BART-Large)\n\n",
                cached.redistribution_seconds, 100.0 * redist_frac);
  }
  return 0;
}
